//! First-order discrete Markov chains.

use std::sync::OnceLock;

use kooza_sim::rng::{Rng64, WeightedIndex};

use crate::{MarkovError, Result};

/// A trained first-order Markov chain over states `0..n_states`.
///
/// Rows of the transition matrix are probability distributions; the initial
/// distribution is learned from sequence starts (or defaults to uniform).
///
/// Sampling is hot-path optimized: every transition row (and the initial
/// distribution) carries a [`WeightedIndex`] cumulative table, so
/// [`MarkovChain::next_state`] is one uniform plus an O(log n) binary
/// search instead of a linear CDF scan — and bit-identical to the scan it
/// replaced (see `WeightedIndex`'s equivalence contract in `kooza-sim`).
/// Row tables are built lazily on first sample: the exact-threshold
/// construction is O(n²) per row, and training pipelines build many chains
/// (one per subsystem) whose rows are mostly never sampled, so paying at
/// `build()` time would tax every fit for work only generation needs.
#[derive(Debug)]
pub struct MarkovChain {
    n_states: usize,
    /// Row-stochastic transition matrix, `transition[i][j] = P(j | i)`.
    transition: Vec<Vec<f64>>,
    /// Initial state distribution.
    initial: Vec<f64>,
    /// Per-row cumulative sampling tables, aligned with `transition`,
    /// built on first use (the table is a pure function of the row).
    transition_cum: Vec<OnceLock<WeightedIndex>>,
    /// Cumulative sampling table for `initial`.
    initial_cum: OnceLock<WeightedIndex>,
}

impl Clone for MarkovChain {
    fn clone(&self) -> Self {
        // Carry over any already-built tables so a clone does not re-pay
        // their construction; missing ones stay lazy.
        let clone_cell = |cell: &OnceLock<WeightedIndex>| {
            let out = OnceLock::new();
            if let Some(table) = cell.get() {
                let _ = out.set(table.clone());
            }
            out
        };
        MarkovChain {
            n_states: self.n_states,
            transition: self.transition.clone(),
            initial: self.initial.clone(),
            transition_cum: self.transition_cum.iter().map(clone_cell).collect(),
            initial_cum: clone_cell(&self.initial_cum),
        }
    }
}

impl PartialEq for MarkovChain {
    fn eq(&self, other: &Self) -> bool {
        // The cumulative tables are derived data; chain identity is the
        // distributions themselves.
        self.n_states == other.n_states
            && self.transition == other.transition
            && self.initial == other.initial
    }
}

/// Builder that accumulates transition counts and produces a
/// [`MarkovChain`] with Laplace smoothing.
///
/// ```
/// use kooza_markov::MarkovChainBuilder;
/// let chain = MarkovChainBuilder::new(3)
///     .with_smoothing(0.5)
///     .observe_sequence(&[0, 1, 2, 1, 0])
///     .build()?;
/// assert_eq!(chain.n_states(), 3);
/// # Ok::<(), kooza_markov::MarkovError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MarkovChainBuilder {
    n_states: usize,
    counts: Vec<Vec<f64>>,
    initial_counts: Vec<f64>,
    smoothing: f64,
    observed_transitions: usize,
}

impl MarkovChainBuilder {
    /// Starts a builder for a chain over `n_states` states with the default
    /// Laplace smoothing of 1.0.
    ///
    /// # Panics
    ///
    /// Panics if `n_states == 0`.
    pub fn new(n_states: usize) -> Self {
        assert!(n_states > 0, "state space must be non-empty");
        MarkovChainBuilder {
            n_states,
            counts: vec![vec![0.0; n_states]; n_states],
            initial_counts: vec![0.0; n_states],
            smoothing: 1.0,
            observed_transitions: 0,
        }
    }

    /// Sets the Laplace smoothing pseudo-count (0 disables smoothing; rows
    /// never observed then fall back to uniform).
    ///
    /// # Panics
    ///
    /// Panics if `smoothing` is negative or non-finite.
    pub fn with_smoothing(mut self, smoothing: f64) -> Self {
        assert!(
            smoothing.is_finite() && smoothing >= 0.0,
            "smoothing must be finite and non-negative"
        );
        self.smoothing = smoothing;
        self
    }

    /// Records every adjacent transition in a sequence, plus its start as an
    /// initial-state observation.
    ///
    /// # Panics
    ///
    /// Panics if any state is out of range.
    pub fn observe_sequence(mut self, seq: &[usize]) -> Self {
        if let Some(&first) = seq.first() {
            assert!(first < self.n_states, "state {first} out of range");
            self.initial_counts[first] += 1.0;
        }
        for w in seq.windows(2) {
            self = self.observe_transition(w[0], w[1]);
        }
        self
    }

    /// Records a single transition.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn observe_transition(mut self, from: usize, to: usize) -> Self {
        assert!(from < self.n_states, "state {from} out of range");
        assert!(to < self.n_states, "state {to} out of range");
        self.counts[from][to] += 1.0;
        self.observed_transitions += 1;
        self
    }

    /// Non-consuming variant of [`observe_transition`] for loop-heavy
    /// training code.
    ///
    /// [`observe_transition`]: MarkovChainBuilder::observe_transition
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn record_transition(&mut self, from: usize, to: usize) {
        assert!(from < self.n_states, "state {from} out of range");
        assert!(to < self.n_states, "state {to} out of range");
        self.counts[from][to] += 1.0;
        self.observed_transitions += 1;
    }

    /// Records `state` as a sequence start (non-consuming).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn record_start(&mut self, state: usize) {
        assert!(state < self.n_states, "state {state} out of range");
        self.initial_counts[state] += 1.0;
    }

    /// Number of transitions observed so far.
    pub fn observed_transitions(&self) -> usize {
        self.observed_transitions
    }

    /// Normalizes counts into a [`MarkovChain`].
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InsufficientData`] if no transitions were
    /// observed and smoothing is zero.
    pub fn build(self) -> Result<MarkovChain> {
        if self.observed_transitions == 0 && self.smoothing == 0.0 {
            return Err(MarkovError::InsufficientData { needed: 1, got: 0 });
        }
        let n = self.n_states;
        let mut transition = Vec::with_capacity(n);
        for row in &self.counts {
            let total: f64 = row.iter().sum::<f64>() + self.smoothing * n as f64;
            if total == 0.0 {
                // Unobserved row with zero smoothing: uniform fallback.
                transition.push(vec![1.0 / n as f64; n]);
            } else {
                transition.push(row.iter().map(|c| (c + self.smoothing) / total).collect());
            }
        }
        let init_total: f64 = self.initial_counts.iter().sum();
        let initial = if init_total == 0.0 {
            vec![1.0 / n as f64; n]
        } else {
            self.initial_counts.iter().map(|c| c / init_total).collect()
        };
        Ok(MarkovChain::assemble(transition, initial))
    }
}

impl MarkovChain {
    /// Constructs a chain directly from a transition matrix and initial
    /// distribution.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotStochastic`] if any row (or the initial
    /// distribution) does not sum to 1 within 1e-9, or
    /// [`MarkovError::EmptyStateSpace`] for an empty matrix.
    pub fn from_matrix(transition: Vec<Vec<f64>>, initial: Vec<f64>) -> Result<Self> {
        let n = transition.len();
        if n == 0 {
            return Err(MarkovError::EmptyStateSpace);
        }
        for (i, row) in transition.iter().enumerate() {
            if row.len() != n {
                return Err(MarkovError::StateOutOfRange { state: row.len(), n_states: n });
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-9 || row.iter().any(|&p| !(0.0..=1.0 + 1e-12).contains(&p)) {
                return Err(MarkovError::NotStochastic { row: i, sum });
            }
        }
        if initial.len() != n {
            return Err(MarkovError::StateOutOfRange { state: initial.len(), n_states: n });
        }
        let init_sum: f64 = initial.iter().sum();
        if (init_sum - 1.0).abs() > 1e-9 {
            return Err(MarkovError::NotStochastic { row: usize::MAX, sum: init_sum });
        }
        Ok(MarkovChain::assemble(transition, initial))
    }

    /// Builds the chain from already-validated stochastic rows (every row
    /// and `initial` sum to a positive total, so the deferred
    /// `WeightedIndex` constructions cannot panic).
    fn assemble(transition: Vec<Vec<f64>>, initial: Vec<f64>) -> Self {
        let transition_cum = transition.iter().map(|_| OnceLock::new()).collect();
        MarkovChain {
            n_states: transition.len(),
            transition,
            initial,
            transition_cum,
            initial_cum: OnceLock::new(),
        }
    }

    /// The cumulative table for one transition row, built on first use.
    fn row_table(&self, row: usize) -> &WeightedIndex {
        self.transition_cum[row].get_or_init(|| WeightedIndex::new(&self.transition[row]))
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// `P(to | from)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range states.
    pub fn transition_probability(&self, from: usize, to: usize) -> f64 {
        assert!(from < self.n_states && to < self.n_states, "state out of range");
        self.transition[from][to]
    }

    /// The transition matrix row for `from`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn row(&self, from: usize) -> &[f64] {
        assert!(from < self.n_states, "state out of range");
        &self.transition[from]
    }

    /// The initial-state distribution.
    pub fn initial(&self) -> &[f64] {
        &self.initial
    }

    /// Samples a start state from the initial distribution.
    pub fn sample_initial(&self, rng: &mut Rng64) -> usize {
        self.initial_cum
            .get_or_init(|| WeightedIndex::new(&self.initial))
            .sample(rng)
    }

    /// Samples the successor of `current` — one uniform plus a binary
    /// search over the row's precomputed cumulative table.
    ///
    /// # Panics
    ///
    /// Panics if `current` is out of range.
    pub fn next_state(&self, current: usize, rng: &mut Rng64) -> usize {
        assert!(current < self.n_states, "state out of range");
        self.row_table(current).sample(rng)
    }

    /// Generates a state sequence of length `len` starting from a sampled
    /// initial state.
    pub fn generate(&self, len: usize, rng: &mut Rng64) -> Vec<usize> {
        let mut out = Vec::with_capacity(len);
        if len == 0 {
            return out;
        }
        let mut state = self.sample_initial(rng);
        out.push(state);
        for _ in 1..len {
            state = self.next_state(state, rng);
            out.push(state);
        }
        out
    }

    /// The stationary distribution, by power iteration.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NumericalFailure`] if 10 000 iterations do not
    /// converge (periodic or pathological chains).
    pub fn stationary(&self) -> Result<Vec<f64>> {
        let n = self.n_states;
        let mut pi = vec![1.0 / n as f64; n];
        for _ in 0..10_000 {
            let mut next = vec![0.0; n];
            for (i, p) in pi.iter().enumerate() {
                for j in 0..n {
                    next[j] += p * self.transition[i][j];
                }
            }
            let diff: f64 = next.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
            pi = next;
            if diff < 1e-13 {
                return Ok(pi);
            }
        }
        Err(MarkovError::NumericalFailure("stationary power iteration"))
    }

    /// Entropy rate `H = −Σᵢ πᵢ Σⱼ pᵢⱼ log₂ pᵢⱼ` in bits per step — a
    /// regularity measure for trained behaviour models.
    ///
    /// # Errors
    ///
    /// Propagates stationary-distribution failure.
    pub fn entropy_rate(&self) -> Result<f64> {
        let pi = self.stationary()?;
        let mut h = 0.0;
        for (i, &pii) in pi.iter().enumerate() {
            for &p in &self.transition[i] {
                if p > 0.0 {
                    h -= pii * p * p.log2();
                }
            }
        }
        Ok(h)
    }

    /// Log-likelihood of an observed sequence under this chain
    /// (initial probability of the first state plus transition terms).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::StateOutOfRange`] on invalid states.
    pub fn log_likelihood(&self, seq: &[usize]) -> Result<f64> {
        let mut ll = 0.0;
        if let Some(&first) = seq.first() {
            if first >= self.n_states {
                return Err(MarkovError::StateOutOfRange { state: first, n_states: self.n_states });
            }
            ll += self.initial[first].max(1e-300).ln();
        }
        for w in seq.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a >= self.n_states || b >= self.n_states {
                return Err(MarkovError::StateOutOfRange {
                    state: a.max(b),
                    n_states: self.n_states,
                });
            }
            ll += self.transition[a][b].max(1e-300).ln();
        }
        Ok(ll)
    }

    /// Total-variation distance between the two chains' transition rows,
    /// averaged over rows — a simple model-similarity measure used by the
    /// validation harness.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::StateOutOfRange`] if state counts differ.
    pub fn mean_row_tv_distance(&self, other: &MarkovChain) -> Result<f64> {
        if self.n_states != other.n_states {
            return Err(MarkovError::StateOutOfRange {
                state: other.n_states,
                n_states: self.n_states,
            });
        }
        let mut total = 0.0;
        for i in 0..self.n_states {
            let tv: f64 = self.transition[i]
                .iter()
                .zip(&other.transition[i])
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / 2.0;
            total += tv;
        }
        Ok(total / self.n_states as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state(p01: f64, p10: f64) -> MarkovChain {
        MarkovChain::from_matrix(
            vec![vec![1.0 - p01, p01], vec![p10, 1.0 - p10]],
            vec![0.5, 0.5],
        )
        .unwrap()
    }

    #[test]
    fn builder_learns_transition_frequencies() {
        // 0 → 0 three times, 0 → 1 once.
        let chain = MarkovChainBuilder::new(2)
            .with_smoothing(0.0)
            .observe_transition(0, 0)
            .observe_transition(0, 0)
            .observe_transition(0, 0)
            .observe_transition(0, 1)
            .observe_transition(1, 0)
            .build()
            .unwrap();
        assert!((chain.transition_probability(0, 0) - 0.75).abs() < 1e-12);
        assert!((chain.transition_probability(0, 1) - 0.25).abs() < 1e-12);
        assert_eq!(chain.transition_probability(1, 0), 1.0);
    }

    #[test]
    fn smoothing_avoids_zero_probabilities() {
        let chain = MarkovChainBuilder::new(3)
            .observe_sequence(&[0, 1, 0, 1])
            .build()
            .unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(chain.transition_probability(i, j) > 0.0);
            }
        }
    }

    #[test]
    fn rows_are_stochastic_after_build() {
        let chain = MarkovChainBuilder::new(4)
            .observe_sequence(&[0, 1, 2, 3, 0, 2, 1])
            .build()
            .unwrap();
        for i in 0..4 {
            let sum: f64 = chain.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn empty_builder_without_smoothing_errors() {
        assert!(MarkovChainBuilder::new(2).with_smoothing(0.0).build().is_err());
        // With smoothing, an untrained chain is uniform.
        let c = MarkovChainBuilder::new(2).build().unwrap();
        assert!((c.transition_probability(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_matrix_validates() {
        assert!(matches!(
            MarkovChain::from_matrix(vec![], vec![]),
            Err(MarkovError::EmptyStateSpace)
        ));
        assert!(matches!(
            MarkovChain::from_matrix(vec![vec![0.6, 0.6], vec![0.5, 0.5]], vec![0.5, 0.5]),
            Err(MarkovError::NotStochastic { row: 0, .. })
        ));
        assert!(MarkovChain::from_matrix(
            vec![vec![0.5, 0.5], vec![0.1, 0.9]],
            vec![0.9, 0.2]
        )
        .is_err());
    }

    #[test]
    fn stationary_of_symmetric_chain_is_uniform() {
        let chain = two_state(0.3, 0.3);
        let pi = chain.stationary().unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
        assert!((pi[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stationary_known_asymmetric() {
        // p01 = 0.2, p10 = 0.8 → π = (0.8, 0.2)
        let chain = two_state(0.2, 0.8);
        let pi = chain.stationary().unwrap();
        assert!((pi[0] - 0.8).abs() < 1e-9, "{pi:?}");
        assert!((pi[1] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn generation_visits_states_per_stationary() {
        let chain = two_state(0.2, 0.8);
        let mut rng = Rng64::new(700);
        let seq = chain.generate(100_000, &mut rng);
        let ones = seq.iter().filter(|&&s| s == 1).count() as f64 / seq.len() as f64;
        assert!((ones - 0.2).abs() < 0.01, "fraction of 1s: {ones}");
    }

    #[test]
    fn generate_zero_length() {
        let chain = two_state(0.5, 0.5);
        assert!(chain.generate(0, &mut Rng64::new(1)).is_empty());
    }

    #[test]
    fn entropy_rate_bounds() {
        // Deterministic cycle: entropy 0.
        let det = MarkovChain::from_matrix(
            vec![vec![0.0, 1.0], vec![1.0, 0.0]],
            vec![1.0, 0.0],
        )
        .unwrap();
        // Power iteration on a periodic chain oscillates; entropy of its
        // rows is 0 regardless, so use the uniform chain for the upper end.
        let uniform = two_state(0.5, 0.5);
        assert!((uniform.entropy_rate().unwrap() - 1.0).abs() < 1e-9);
        // Deterministic chain rows have zero row entropy even though the
        // stationary computation may not converge; accept either outcome.
        if let Ok(h) = det.entropy_rate() {
            assert!(h.abs() < 1e-9);
        }
    }

    #[test]
    fn log_likelihood_prefers_generating_chain() {
        let a = two_state(0.9, 0.9); // alternating
        let b = two_state(0.1, 0.1); // sticky
        let mut rng = Rng64::new(701);
        let seq = a.generate(2000, &mut rng);
        assert!(a.log_likelihood(&seq).unwrap() > b.log_likelihood(&seq).unwrap());
    }

    #[test]
    fn log_likelihood_rejects_invalid_state() {
        let chain = two_state(0.5, 0.5);
        assert!(chain.log_likelihood(&[0, 5]).is_err());
    }

    #[test]
    fn trained_chain_recovers_source_matrix() {
        let source = two_state(0.25, 0.65);
        let mut rng = Rng64::new(702);
        let seq = source.generate(200_000, &mut rng);
        let trained = MarkovChainBuilder::new(2)
            .with_smoothing(0.0)
            .observe_sequence(&seq)
            .build()
            .unwrap();
        let tv = source.mean_row_tv_distance(&trained).unwrap();
        assert!(tv < 0.01, "TV distance {tv}");
    }

    #[test]
    fn tv_distance_properties() {
        let a = two_state(0.2, 0.2);
        assert_eq!(a.mean_row_tv_distance(&a).unwrap(), 0.0);
        let b = two_state(0.8, 0.8);
        let d = a.mean_row_tv_distance(&b).unwrap();
        assert!((d - 0.6).abs() < 1e-12, "d = {d}");
        let c3 = MarkovChainBuilder::new(3).build().unwrap();
        assert!(a.mean_row_tv_distance(&c3).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn observe_out_of_range_panics() {
        let _ = MarkovChainBuilder::new(2).observe_transition(0, 2);
    }
}
