//! The event-driven GFS cluster simulation.
//!
//! Requests follow the paper's Figure 1: network in → CPU (lookup) →
//! memory (buffer access) → disk (unless the buffer cache hits) → CPU
//! (aggregate) → network out. Writes additionally replicate to secondary
//! chunkservers before acknowledging.
//!
//! Every request is instrumented (subject to Dapper-style 1-in-N trace
//! sampling): per-subsystem records plus a span tree land in a
//! [`TraceSet`]. Sampled requests pay a configurable CPU overhead per
//! span, so the overhead-vs-sampling-rate experiment (Dapper's "<1.5%")
//! has something real to measure.

use std::collections::HashMap;

use kooza_sim::rng::Rng64;
use kooza_sim::{Engine, ServerPool, SimDuration, SimTime, Tally};
use kooza_stats::dist::{DiscreteDistribution, Distribution, Exponential, Zipf};
use kooza_trace::record::{CpuRecord, Direction, IoOp, MemoryRecord, NetworkRecord, StorageRecord};
use kooza_trace::span::{Span, SpanCollector, SpanId, TraceId};
use kooza_trace::view::{ShardedTrace, TraceView};
use kooza_trace::TraceSet;

use crate::config::ClusterConfig;
use crate::hardware::{CpuModel, DiskModel, LinkModel, MemoryModel};
use crate::master::{ChunkHandle, Master, LBNS_PER_CHUNK};

/// What kind of request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
}

/// One independent run specification for [`Cluster::run_trials`]: a
/// request count plus the workload seed driving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// Requests to issue.
    pub n_requests: u64,
    /// Workload seed (controls arrivals, sizes, placement targets).
    pub seed: u64,
}

/// Summary of one completed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestOutcome {
    /// Global request id.
    pub id: u64,
    /// `true` for reads, `false` for writes.
    pub is_read: bool,
    /// Request payload size, bytes.
    pub size: u64,
    /// End-to-end latency in nanoseconds.
    pub latency_nanos: u64,
    /// Whether the request's trace was sampled.
    pub sampled: bool,
    /// CPU busy time attributed to the request, nanoseconds.
    pub cpu_busy_nanos: u64,
    /// Whether the buffer cache absorbed the read.
    pub cache_hit: bool,
}

/// Aggregate simulation statistics.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Requests completed.
    pub completed: u64,
    /// Latency distribution (seconds).
    pub latency_secs: Tally,
    /// Simulated makespan, seconds.
    pub makespan_secs: f64,
    /// Per-chunkserver CPU utilization.
    pub cpu_utilization: Vec<f64>,
    /// Per-chunkserver disk utilization.
    pub disk_utilization: Vec<f64>,
    /// Buffer-cache hit ratio per chunkserver.
    pub cache_hit_ratio: Vec<f64>,
    /// Total CPU busy time across servers, seconds.
    pub total_cpu_busy_secs: f64,
    /// CPU time spent on tracing instrumentation, seconds.
    pub tracing_busy_secs: f64,
    /// Master CPU utilization (0 when the master path is disabled).
    pub master_utilization: f64,
    /// Client metadata-cache hit ratio (1 when the master path is disabled).
    pub metadata_hit_ratio: f64,
    /// Simulation events the engine processed.
    pub events_processed: u64,
    /// Deepest the engine's pending-event queue ever got.
    pub pending_high_water: u64,
    /// Requests served by each chunkserver (primary only).
    pub requests_per_server: Vec<u64>,
    /// Deepest any of a chunkserver's station queues (CPU, disk, net in,
    /// net out) ever got, per server.
    pub queue_high_water_per_server: Vec<u64>,
}

impl ClusterStats {
    /// Completed requests per simulated second.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.makespan_secs > 0.0 {
            self.completed as f64 / self.makespan_secs
        } else {
            0.0
        }
    }

    /// Fraction of CPU work that went to tracing instrumentation.
    pub fn tracing_overhead_fraction(&self) -> f64 {
        if self.total_cpu_busy_secs > 0.0 {
            self.tracing_busy_secs / self.total_cpu_busy_secs
        } else {
            0.0
        }
    }
}

/// Everything a run produces.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// The collected multi-subsystem trace (whole cluster).
    pub trace: TraceSet,
    /// The same records grouped by the chunkserver that served each
    /// request — §4: "Scaling to multiple servers in order to simulate
    /// real-application scenarios requires multiple instances of the
    /// model", and each instance trains on its own server's trace.
    /// Stored once; [`ClusterOutcome::server_views`] borrows per-server
    /// slices without copying.
    pub per_server: ShardedTrace,
    /// Aggregate statistics.
    pub stats: ClusterStats,
    /// Per-request outcomes, completion order.
    pub requests: Vec<RequestOutcome>,
}

impl ClusterOutcome {
    /// Zero-copy per-server trace views, indexed by chunkserver.
    pub fn server_views(&self) -> Vec<TraceView<'_>> {
        self.per_server.views()
    }
}

/// In-flight request state.
#[derive(Debug)]
struct ReqState {
    kind: Kind,
    size: u64,
    mem_size: u64,
    chunk: ChunkHandle,
    server: usize,
    start: SimTime,
    lbn: u64,
    sampled: bool,
    cache_hit: bool,
    cpu_busy: SimDuration,
    pending_replicas: usize,
    /// Completed phase intervals for span assembly: (name, start, end).
    phases: Vec<(&'static str, SimTime, SimTime)>,
    /// Start of the phase currently in progress.
    phase_started: SimTime,
}

/// Per-chunkserver resources.
///
/// Pool jobs carry what is needed to compute the service time *when the
/// job actually starts*: CPU jobs carry their precomputed busy time
/// (tracing overhead included), disk jobs carry `(lbn, size)` so the
/// seek reflects the head position at start, network jobs carry the wire
/// size.
#[derive(Debug)]
struct Server {
    /// (request, stage, busy time)
    cpu_pool: ServerPool<(u64, u8, SimDuration)>,
    /// (request, lbn, size, replica?)
    disk_pool: ServerPool<(u64, u64, u64, bool)>,
    /// (request, wire bytes, replica?)
    net_in_pool: ServerPool<(u64, u64, bool)>,
    /// (request, wire bytes)
    net_out_pool: ServerPool<(u64, u64)>,
    disk: DiskModel,
    memory: MemoryModel,
    cpu: CpuModel,
    link: LinkModel,
}

impl Server {
    /// Offers a CPU job; schedules its completion if a core is free.
    fn offer_cpu(
        &mut self,
        engine: &mut Engine<Ev>,
        now: SimTime,
        server: usize,
        job: (u64, u8, SimDuration),
    ) {
        if let Some((id, stage, busy)) = self.cpu_pool.arrive(now, job) {
            engine.schedule(busy, Ev::CpuDone { id, server, stage });
        }
    }

    /// Starts a disk job (computing the seek now) and schedules completion.
    fn start_disk(
        &mut self,
        engine: &mut Engine<Ev>,
        server: usize,
        (id, lbn, size, replica): (u64, u64, u64, bool),
    ) {
        let service = self.disk.access(lbn, size);
        engine.schedule(service, Ev::DiskDone { id, server, replica });
    }

    /// Offers a disk job; starts it if the disk is idle.
    fn offer_disk(
        &mut self,
        engine: &mut Engine<Ev>,
        now: SimTime,
        server: usize,
        job: (u64, u64, u64, bool),
    ) {
        if let Some(started) = self.disk_pool.arrive(now, job) {
            self.start_disk(engine, server, started);
        }
    }

    /// Offers an ingress transfer; schedules it if the NIC is idle.
    fn offer_net_in(
        &mut self,
        engine: &mut Engine<Ev>,
        now: SimTime,
        server: usize,
        job: (u64, u64, bool),
    ) {
        if let Some((id, wire, replica)) = self.net_in_pool.arrive(now, job) {
            let service = self.link.transfer(wire);
            engine.schedule(service, Ev::NetInDone { id, server, replica });
        }
    }

    /// Offers an egress transfer; schedules it if the NIC is idle.
    fn offer_net_out(
        &mut self,
        engine: &mut Engine<Ev>,
        now: SimTime,
        server: usize,
        job: (u64, u64),
    ) {
        if let Some((id, wire)) = self.net_out_pool.arrive(now, job) {
            let service = self.link.transfer(wire);
            engine.schedule(service, Ev::NetOutDone { id, server });
        }
    }
}

#[derive(Debug)]
enum Ev {
    /// Generator tick: issue request `id`.
    NewRequest { id: u64 },
    /// Ingress transfer done (`replica` marks replication traffic).
    NetInDone { id: u64, server: usize, replica: bool },
    /// CPU phase done (`stage` 1 = lookup, 2 = aggregate).
    CpuDone { id: u64, server: usize, stage: u8 },
    /// Memory access done.
    MemDone { id: u64, server: usize },
    /// Disk access done (`replica` marks replica writes).
    DiskDone { id: u64, server: usize, replica: bool },
    /// Egress transfer done; request complete.
    NetOutDone { id: u64, server: usize },
    /// Master location lookup finished for this request.
    MasterDone { id: u64 },
}

/// The cluster simulator.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    master: Master,
    rng: Rng64,
}

impl Cluster {
    /// Builds a cluster from a validated configuration.
    ///
    /// The configuration is borrowed and cloned exactly once, so callers
    /// can build many clusters (trial sweeps, per-rate sweeps) from one
    /// config without deep-copying it themselves.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GfsError::InvalidConfig`] on bad parameters.
    pub fn new(config: &ClusterConfig) -> crate::Result<Self> {
        config.validate()?;
        // Placement is part of the cluster identity; derive its seed from
        // structure so `run(seed)` controls only the workload.
        let mut placement_rng = Rng64::new(0xC0FF_EE00 ^ config.n_chunkservers as u64);
        let master = Master::place(
            config.workload.n_chunks,
            config.n_chunkservers,
            config.replication,
            &mut placement_rng,
        )?;
        Ok(Cluster {
            config: config.clone(),
            master,
            rng: Rng64::new(0),
        })
    }

    /// Runs `trials.len()` independent simulations of `config` in
    /// parallel (one fresh cluster per trial) and returns the outcomes in
    /// trial order. Bit-identical to running each trial serially: every
    /// trial owns its own engine and RNG, and `kooza-exec` merges results
    /// in submission order.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GfsError::InvalidConfig`] on bad parameters.
    pub fn run_trials(
        config: &ClusterConfig,
        trials: &[Trial],
    ) -> crate::Result<Vec<ClusterOutcome>> {
        config.validate()?;
        Ok(kooza_exec::par_map(trials, |t| {
            let mut cluster = Cluster::new(config).expect("config validated above");
            cluster.run(t.n_requests, t.seed)
        }))
    }

    /// The chunk-placement metadata.
    pub fn master(&self) -> &Master {
        &self.master
    }

    /// The configuration this cluster was built with.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Runs `n_requests` requests with the given workload seed, returning
    /// the trace, statistics and per-request outcomes. Deterministic:
    /// equal `(config, n_requests, seed)` gives identical outcomes.
    pub fn run(&mut self, n_requests: u64, seed: u64) -> ClusterOutcome {
        self.rng = Rng64::new(seed);
        let cfg = &self.config;
        let mut engine: Engine<Ev> = Engine::new();
        let mut servers: Vec<Server> = (0..cfg.n_chunkservers)
            .map(|_| Server {
                cpu_pool: ServerPool::new(cfg.cpu.cores),
                disk_pool: ServerPool::new(1),
                net_in_pool: ServerPool::new(1),
                net_out_pool: ServerPool::new(1),
                disk: DiskModel::new(cfg.disk),
                memory: MemoryModel::new(cfg.memory),
                cpu: CpuModel::new(cfg.cpu),
                link: LinkModel::new(cfg.link),
            })
            .collect();
        let zipf = Zipf::new(cfg.workload.n_chunks, cfg.workload.zipf_skew)
            .expect("validated config");
        let gap = Exponential::with_mean(cfg.workload.mean_interarrival_secs)
            .expect("validated config");
        let mut collector = SpanCollector::with_sampling(cfg.trace_sampling);
        let trace_overhead = SimDuration::from_secs_f64(cfg.tracing_overhead_secs);

        let mut states: HashMap<u64, ReqState> = HashMap::new();
        // Master metadata path (optional).
        let mut master_pool: ServerPool<(u64, SimDuration)> = ServerPool::new(1);
        let mut metadata_caches: Vec<std::collections::VecDeque<ChunkHandle>> =
            vec![std::collections::VecDeque::new(); cfg.n_clients];
        let mut metadata_lookups = 0u64;
        let mut metadata_hits = 0u64;
        let master_service = SimDuration::from_secs_f64(
            2.0 * cfg.link.latency_secs + cfg.master_lookup_secs,
        );
        let mut trace = TraceSet::new();
        // Request ids are issued sequentially, so a flat table maps each
        // request to the chunkserver that served it; the per-server split
        // is a single partition of the finished trace instead of a second
        // copy of every record in the hot loop.
        let mut server_of: Vec<usize> = vec![0; n_requests as usize];
        let mut outcomes = Vec::with_capacity(n_requests as usize);
        let mut latency = Tally::new();
        let mut tracing_busy = SimDuration::ZERO;
        let mut total_cpu_busy = SimDuration::ZERO;
        let rng = &mut self.rng;

        if n_requests > 0 {
            engine.schedule(
                SimDuration::from_secs_f64(gap.sample(rng)),
                Ev::NewRequest { id: 0 },
            );
        }

        while let Some((now, ev)) = engine.next() {
            match ev {
                Ev::NewRequest { id } => {
                    if id + 1 < n_requests {
                        engine.schedule(
                            SimDuration::from_secs_f64(gap.sample(rng)),
                            Ev::NewRequest { id: id + 1 },
                        );
                    }
                    let kind = if rng.chance(cfg.workload.read_fraction) {
                        Kind::Read
                    } else {
                        Kind::Write
                    };
                    let size = match kind {
                        Kind::Read => cfg.workload.read_size,
                        Kind::Write => cfg.workload.write_size,
                    };
                    let chunk = ChunkHandle(zipf.sample(rng) - 1);
                    let server = match kind {
                        Kind::Read => self.master.read_target(chunk, rng),
                        Kind::Write => self.master.primary(chunk),
                    };
                    // Offset within the chunk, 512 B aligned, leaving room
                    // for the access itself.
                    let blocks = size.div_ceil(512).max(1);
                    let span_lbns = LBNS_PER_CHUNK.saturating_sub(blocks).max(1);
                    let lbn = self.master.chunk_base_lbn(chunk) + rng.next_bounded(span_lbns);
                    server_of[id as usize] = server;
                    let sampled = collector.should_record(TraceId(id));
                    let mem_size = match kind {
                        // Metadata plus a slice of the buffer: the request's
                        // memory footprint is a fixed fraction of payload
                        // (¼ for reads, 1/16 for writes), reproducing the
                        // 16 KB / 256 KB rows of the paper's Table 2.
                        Kind::Read => (size / 4).max(64),
                        Kind::Write => (size / 16).max(64),
                    };
                    states.insert(
                        id,
                        ReqState {
                            kind,
                            size,
                            mem_size,
                            chunk,
                            server,
                            start: now,
                            lbn,
                            sampled,
                            cache_hit: false,
                            cpu_busy: SimDuration::ZERO,
                            pending_replicas: 0,
                            phases: Vec::new(),
                            phase_started: now,
                        },
                    );
                    // Ingress: a small header for reads, the payload for
                    // writes. The record carries the wire size — the
                    // payload a read moves shows up on egress, so recording
                    // the payload here would double-count it in replay.
                    let wire = match kind {
                        Kind::Read => 1024,
                        Kind::Write => size,
                    };
                    // Metadata path: consult the master unless the client's
                    // location cache already knows the chunk.
                    let client = (id % cfg.n_clients as u64) as usize;
                    let cached = !cfg.consult_master || {
                        metadata_lookups += 1;
                        let cache = &mut metadata_caches[client];
                        if let Some(pos) = cache.iter().position(|&c| c == chunk) {
                            cache.remove(pos);
                            cache.push_back(chunk);
                            metadata_hits += 1;
                            true
                        } else {
                            false
                        }
                    };
                    if cached {
                        let rec = NetworkRecord {
                            ts_nanos: now.as_nanos(),
                            size: wire,
                            direction: Direction::Ingress,
                            request_id: id,
                        };
                        trace.network.push(rec);
                        servers[server].offer_net_in(&mut engine, now, server, (id, wire, false));
                    } else if let Some((job, service)) =
                        master_pool.arrive(now, (id, master_service))
                    {
                        engine.schedule(service, Ev::MasterDone { id: job });
                    }
                }
                Ev::MasterDone { id } => {
                    if let Some((job, service)) = master_pool.complete(now) {
                        engine.schedule(service, Ev::MasterDone { id: job });
                    }
                    let st = states.get_mut(&id).expect("live request");
                    st.phases.push(("master.lookup", st.phase_started, now));
                    st.phase_started = now;
                    // Cache the location for this client (LRU).
                    let client = (id % cfg.n_clients as u64) as usize;
                    let cache = &mut metadata_caches[client];
                    cache.push_back(st.chunk);
                    while cache.len() > cfg.client_metadata_cache.max(1) {
                        cache.pop_front();
                    }
                    let server = st.server;
                    let wire = match st.kind {
                        Kind::Read => 1024,
                        Kind::Write => st.size,
                    };
                    let rec = NetworkRecord {
                        ts_nanos: now.as_nanos(),
                        size: wire,
                        direction: Direction::Ingress,
                        request_id: id,
                    };
                    trace.network.push(rec);
                    servers[server].offer_net_in(&mut engine, now, server, (id, wire, false));
                }
                Ev::NetInDone { id, server, replica } => {
                    // Free the NIC; start the next queued ingress.
                    if let Some((job, wire, is_rep)) = servers[server].net_in_pool.complete(now) {
                        let service = servers[server].link.transfer(wire);
                        engine.schedule(
                            service,
                            Ev::NetInDone { id: job, server, replica: is_rep },
                        );
                    }
                    if replica {
                        // Replica data landed: write it to the replica disk.
                        let (lbn, size) = {
                            let st = &states[&id];
                            (st.lbn, st.size)
                        };
                        servers[server].offer_disk(&mut engine, now, server, (id, lbn, size, true));
                        continue;
                    }
                    let st = states.get_mut(&id).expect("live request");
                    st.phases.push(("network.in", st.phase_started, now));
                    st.phase_started = now;
                    // CPU stage 1: lookup/verify over the request header.
                    let mut busy = servers[server].cpu.phase(1024);
                    if st.sampled {
                        busy += trace_overhead;
                        tracing_busy += trace_overhead;
                    }
                    st.cpu_busy += busy;
                    total_cpu_busy += busy;
                    servers[server].offer_cpu(&mut engine, now, server, (id, 1, busy));
                }
                Ev::CpuDone { id, server, stage } => {
                    if let Some((job, next_stage, busy)) = servers[server].cpu_pool.complete(now) {
                        engine.schedule(busy, Ev::CpuDone { id: job, server, stage: next_stage });
                    }
                    if stage == 1 {
                        let st = states.get_mut(&id).expect("live request");
                        st.phases.push(("cpu.lookup", st.phase_started, now));
                        st.phase_started = now;
                        // Memory access (buffer cache + bank traffic).
                        let bank = servers[server].memory.bank_of(st.chunk);
                        let hit = servers[server].memory.cache_access(st.chunk);
                        st.cache_hit = st.kind == Kind::Read && hit;
                        let service = servers[server].memory.access(bank, st.mem_size);
                        let rec = MemoryRecord {
                            ts_nanos: now.as_nanos(),
                            bank,
                            size: st.mem_size,
                            op: match st.kind {
                                Kind::Read => IoOp::Read,
                                Kind::Write => IoOp::Write,
                            },
                            request_id: id,
                        };
                        trace.memory.push(rec);
                        engine.schedule(service, Ev::MemDone { id, server });
                    } else {
                        // Aggregation done → respond over the network.
                        let st = states.get_mut(&id).expect("live request");
                        st.phases.push(("cpu.aggregate", st.phase_started, now));
                        st.phase_started = now;
                        let wire = match st.kind {
                            Kind::Read => st.size,
                            Kind::Write => 1024,
                        };
                        let rec = NetworkRecord {
                            ts_nanos: now.as_nanos(),
                            size: wire,
                            direction: Direction::Egress,
                            request_id: id,
                        };
                        trace.network.push(rec);
                        servers[server].offer_net_out(&mut engine, now, server, (id, wire));
                    }
                }
                Ev::MemDone { id, server } => {
                    let st = states.get_mut(&id).expect("live request");
                    st.phases.push(("memory", st.phase_started, now));
                    st.phase_started = now;
                    if st.kind == Kind::Read && st.cache_hit {
                        // Buffer cache absorbed the read: skip the disk.
                        Self::schedule_cpu_aggregate(
                            &mut engine,
                            &mut servers[server],
                            st,
                            id,
                            server,
                            now,
                            trace_overhead,
                            &mut tracing_busy,
                            &mut total_cpu_busy,
                        );
                    } else {
                        let op = match st.kind {
                            Kind::Read => IoOp::Read,
                            Kind::Write => IoOp::Write,
                        };
                        let rec = StorageRecord {
                            ts_nanos: now.as_nanos(),
                            lbn: st.lbn,
                            size: st.size,
                            op,
                            request_id: id,
                        };
                        trace.storage.push(rec);
                        let (lbn, size) = (st.lbn, st.size);
                        servers[server].offer_disk(&mut engine, now, server, (id, lbn, size, false));
                    }
                }
                Ev::DiskDone { id, server, replica } => {
                    if let Some(job) = servers[server].disk_pool.complete(now) {
                        servers[server].start_disk(&mut engine, server, job);
                    }
                    if replica {
                        let st = states.get_mut(&id).expect("live request");
                        st.pending_replicas -= 1;
                        if st.pending_replicas == 0 {
                            let primary = st.server;
                            st.phases.push(("replicate", st.phase_started, now));
                            st.phase_started = now;
                            Self::schedule_cpu_aggregate(
                                &mut engine,
                                &mut servers[primary],
                                st,
                                id,
                                primary,
                                now,
                                trace_overhead,
                                &mut tracing_busy,
                                &mut total_cpu_busy,
                            );
                        }
                        continue;
                    }
                    let st = states.get_mut(&id).expect("live request");
                    st.phases.push(("disk", st.phase_started, now));
                    st.phase_started = now;
                    let replicas: Vec<usize> = self
                        .master
                        .replicas(st.chunk)
                        .iter()
                        .copied()
                        .filter(|&s| s != server)
                        .collect();
                    if st.kind == Kind::Write && !replicas.is_empty() {
                        st.pending_replicas = replicas.len();
                        let size = st.size;
                        for rep in replicas {
                            servers[rep].offer_net_in(&mut engine, now, rep, (id, size, true));
                        }
                    } else {
                        Self::schedule_cpu_aggregate(
                            &mut engine,
                            &mut servers[server],
                            st,
                            id,
                            server,
                            now,
                            trace_overhead,
                            &mut tracing_busy,
                            &mut total_cpu_busy,
                        );
                    }
                }
                Ev::NetOutDone { id, server } => {
                    if let Some((job, wire)) = servers[server].net_out_pool.complete(now) {
                        let service = servers[server].link.transfer(wire);
                        engine.schedule(service, Ev::NetOutDone { id: job, server });
                    }
                    let mut st = states.remove(&id).expect("live request");
                    st.phases.push(("network.out", st.phase_started, now));
                    let total = now - st.start;
                    latency.record(total.as_secs_f64());
                    let rec = CpuRecord {
                        ts_nanos: now.as_nanos(),
                        utilization: st.cpu_busy.as_nanos() as f64 / total.as_nanos().max(1) as f64,
                        busy_nanos: st.cpu_busy.as_nanos(),
                        request_id: id,
                    };
                    trace.cpu.push(rec);
                    outcomes.push(RequestOutcome {
                        id,
                        is_read: st.kind == Kind::Read,
                        size: st.size,
                        latency_nanos: total.as_nanos(),
                        sampled: st.sampled,
                        cpu_busy_nanos: st.cpu_busy.as_nanos(),
                        cache_hit: st.cache_hit,
                    });
                    if st.sampled {
                        let tid = TraceId(id);
                        let root = Span::new(
                            tid,
                            SpanId(0),
                            None,
                            "request",
                            st.start.as_nanos(),
                            now.as_nanos(),
                        );
                        collector.record(root);
                        for (span_idx, (name, s, e)) in (1u64..).zip(st.phases.iter()) {
                            let span = Span::new(
                                tid,
                                SpanId(span_idx),
                                Some(SpanId(0)),
                                *name,
                                s.as_nanos(),
                                e.as_nanos(),
                            );
                            collector.record(span);
                        }
                    }
                }
            }
        }

        let end = engine.now();
        let mut requests_per_server = vec![0u64; cfg.n_chunkservers];
        for &s in &server_of {
            requests_per_server[s] += 1;
        }
        let queue_high_water_per_server: Vec<u64> = servers
            .iter()
            .map(|s| {
                s.cpu_pool
                    .queue_high_water()
                    .max(s.disk_pool.queue_high_water())
                    .max(s.net_in_pool.queue_high_water())
                    .max(s.net_out_pool.queue_high_water()) as u64
            })
            .collect();
        let stats = ClusterStats {
            completed: outcomes.len() as u64,
            latency_secs: latency,
            makespan_secs: end.as_secs_f64(),
            cpu_utilization: servers.iter().map(|s| s.cpu_pool.utilization(end)).collect(),
            disk_utilization: servers.iter().map(|s| s.disk_pool.utilization(end)).collect(),
            cache_hit_ratio: servers.iter().map(|s| s.memory.hit_ratio()).collect(),
            total_cpu_busy_secs: total_cpu_busy.as_secs_f64(),
            tracing_busy_secs: tracing_busy.as_secs_f64(),
            master_utilization: master_pool.utilization(end),
            metadata_hit_ratio: if metadata_lookups == 0 {
                1.0
            } else {
                metadata_hits as f64 / metadata_lookups as f64
            },
            events_processed: engine.processed(),
            pending_high_water: engine.pending_high_water() as u64,
            requests_per_server,
            queue_high_water_per_server,
        };
        self.publish_metrics(&stats, &outcomes);
        trace.spans = collector.spans().to_vec();
        trace.sort_by_time();
        // Partitioning the time-sorted trace keeps each server's records
        // time-sorted, matching what the old per-record duplication
        // produced — without a second copy in the event loop.
        let per_server = ShardedTrace::partition(&trace, cfg.n_chunkservers, |rid| {
            server_of[rid as usize]
        });
        ClusterOutcome {
            trace,
            per_server,
            stats,
            requests: outcomes,
        }
    }

    /// Publishes one finished run's aggregate metrics to the global
    /// observability registry (no-op unless `--obs` enabled it).
    ///
    /// Runs may execute inside `par_map` workers (`run_trials`), so only
    /// commutative operations appear here — counter adds, gauge maxima,
    /// integer histogram records — keeping the registry state identical
    /// at any thread count. One `with_registry` call takes the lock once
    /// per run, not once per event.
    fn publish_metrics(&self, stats: &ClusterStats, outcomes: &[RequestOutcome]) {
        if !kooza_obs::global::is_enabled() {
            return;
        }
        /// Request latency buckets, nanoseconds: 1µs … 10s by decades.
        const LATENCY_BOUNDS: &[u64] = &[
            1_000,
            10_000,
            100_000,
            1_000_000,
            10_000_000,
            100_000_000,
            1_000_000_000,
            10_000_000_000,
        ];
        /// Per-server request-count buckets.
        const REQUESTS_BOUNDS: &[u64] = &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];
        /// Station queue-depth buckets.
        const QUEUE_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512];
        kooza_obs::global::with_registry(|reg| {
            reg.counter_add("gfs.requests_completed", stats.completed);
            reg.counter_add("gfs.events_processed", stats.events_processed);
            reg.counter_add("gfs.runs", 1);
            reg.gauge_max("gfs.pending_high_water", stats.pending_high_water as f64);
            let latency = reg.histogram_mut("gfs.request_latency_nanos", LATENCY_BOUNDS);
            for outcome in outcomes {
                latency.record(outcome.latency_nanos);
            }
            let per_server = reg.histogram_mut("gfs.server.requests", REQUESTS_BOUNDS);
            for &n in &stats.requests_per_server {
                per_server.record(n);
            }
            let queues = reg.histogram_mut("gfs.server.queue_high_water", QUEUE_BOUNDS);
            for &depth in &stats.queue_high_water_per_server {
                queues.record(depth);
            }
        });
    }

    /// Enqueues CPU stage 2 (aggregate/checksum) for a request.
    #[allow(clippy::too_many_arguments)]
    fn schedule_cpu_aggregate(
        engine: &mut Engine<Ev>,
        server_state: &mut Server,
        st: &mut ReqState,
        id: u64,
        server: usize,
        now: SimTime,
        trace_overhead: SimDuration,
        tracing_busy: &mut SimDuration,
        total_cpu_busy: &mut SimDuration,
    ) {
        let mut busy = server_state.cpu.phase(st.size);
        if st.sampled {
            busy += trace_overhead;
            *tracing_busy += trace_overhead;
        }
        st.cpu_busy += busy;
        *total_cpu_busy += busy;
        server_state.offer_cpu(engine, now, server, (id, 2, busy));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadMix;

    fn run_small(mix: WorkloadMix, n: u64, seed: u64) -> ClusterOutcome {
        let mut config = ClusterConfig::small();
        config.workload = mix;
        Cluster::new(&config).unwrap().run(n, seed)
    }

    #[test]
    fn completes_every_request() {
        let out = run_small(WorkloadMix::mixed(), 500, 1);
        assert_eq!(out.stats.completed, 500);
        assert_eq!(out.requests.len(), 500);
        assert_eq!(out.trace.cpu.len(), 500);
        // One ingress + one egress network record per request.
        assert_eq!(out.trace.network.len(), 1000);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = run_small(WorkloadMix::mixed(), 300, 7);
        let b = run_small(WorkloadMix::mixed(), 300, 7);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.requests, b.requests);
        let c = run_small(WorkloadMix::mixed(), 300, 8);
        assert_ne!(a.trace, c.trace);
    }

    #[test]
    fn read_heavy_mix_produces_reads() {
        let out = run_small(WorkloadMix::read_heavy(), 400, 2);
        assert!(out.requests.iter().all(|r| r.is_read));
        assert!(out
            .trace
            .storage
            .iter()
            .all(|r| r.op == IoOp::Read));
        // 64 KB reads.
        assert!(out.requests.iter().all(|r| r.size == 64 * 1024));
    }

    #[test]
    fn write_latency_exceeds_read_latency() {
        let reads = run_small(WorkloadMix::read_heavy(), 300, 3);
        let writes = run_small(WorkloadMix::write_heavy(), 300, 3);
        assert!(
            writes.stats.latency_secs.mean() > 3.0 * reads.stats.latency_secs.mean(),
            "writes {} reads {}",
            writes.stats.latency_secs.mean(),
            reads.stats.latency_secs.mean()
        );
    }

    #[test]
    fn cache_hits_happen_and_skip_disk() {
        // Hot working set: fewer chunks than cache slots.
        let mix = WorkloadMix { n_chunks: 16, ..WorkloadMix::read_heavy() };
        let out = run_small(mix, 1000, 4);
        assert!(out.stats.cache_hit_ratio[0] > 0.5, "hit ratio {}", out.stats.cache_hit_ratio[0]);
        let hits = out.requests.iter().filter(|r| r.cache_hit).count();
        assert!(hits > 500);
        // Disk records only for the misses.
        assert_eq!(out.trace.storage.len(), 1000 - hits);
        // Cache-hit reads are faster on average.
        let mean = |v: Vec<u64>| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
        let hit_lat = mean(out.requests.iter().filter(|r| r.cache_hit).map(|r| r.latency_nanos).collect());
        let miss_lat = mean(out.requests.iter().filter(|r| !r.cache_hit).map(|r| r.latency_nanos).collect());
        assert!(miss_lat > hit_lat, "miss {miss_lat} hit {hit_lat}");
    }

    #[test]
    fn span_trees_follow_figure_one() {
        let mix = WorkloadMix { n_chunks: 100_000, zipf_skew: 0.5, ..WorkloadMix::read_heavy() };
        let out = run_small(mix, 50, 5);
        let trees = out.trace.span_trees();
        assert_eq!(trees.len(), 50);
        for tree in &trees {
            let phases = tree.phase_sequence();
            // Cache misses: the full Figure-1 pipeline.
            if phases.len() == 6 {
                assert_eq!(
                    phases,
                    vec!["network.in", "cpu.lookup", "memory", "disk", "cpu.aggregate", "network.out"]
                );
            } else {
                // Cache hits skip the disk phase.
                assert_eq!(
                    phases,
                    vec!["network.in", "cpu.lookup", "memory", "cpu.aggregate", "network.out"]
                );
            }
        }
    }

    #[test]
    fn sampling_reduces_spans_and_overhead() {
        let mut config = ClusterConfig::small();
        config.workload = WorkloadMix::read_heavy();
        config.trace_sampling = 10;
        let mut cluster = Cluster::new(&config).unwrap();
        let out = cluster.run(2000, 6);
        let sampled = out.requests.iter().filter(|r| r.sampled).count();
        assert!((100..400).contains(&sampled), "sampled {sampled}");
        // Only sampled requests have spans.
        assert_eq!(out.trace.span_trees().len(), sampled);
        // Overhead fraction shrinks accordingly.
        let mut full_config = ClusterConfig::small();
        full_config.workload = WorkloadMix::read_heavy();
        full_config.trace_sampling = 1;
        let full = Cluster::new(&full_config).unwrap().run(2000, 6);
        assert!(
            out.stats.tracing_overhead_fraction() < full.stats.tracing_overhead_fraction() / 4.0
        );
    }

    #[test]
    fn replication_touches_multiple_disks() {
        let mut config = ClusterConfig::cluster(3);
        config.workload = WorkloadMix::write_heavy();
        config.workload.mean_interarrival_secs = 0.2; // light load
        let mut cluster = Cluster::new(&config).unwrap();
        let out = cluster.run(100, 7);
        assert_eq!(out.stats.completed, 100);
        // All three disks saw traffic (replication fans writes out).
        for (i, u) in out.stats.disk_utilization.iter().enumerate() {
            assert!(*u > 0.0, "disk {i} idle");
        }
        // Replicated writes are slower than they would be unreplicated.
        let mut solo_config = ClusterConfig::cluster(3);
        solo_config.replication = 1;
        solo_config.workload = WorkloadMix::write_heavy();
        solo_config.workload.mean_interarrival_secs = 0.2;
        let solo = Cluster::new(&solo_config).unwrap().run(100, 7);
        assert!(
            out.stats.latency_secs.mean() > solo.stats.latency_secs.mean(),
            "replicated {} solo {}",
            out.stats.latency_secs.mean(),
            solo.stats.latency_secs.mean()
        );
    }

    #[test]
    fn cpu_utilization_is_modest_for_reads() {
        // The Table-2 shape: a 64 KB read spends a few percent of its
        // lifetime on CPU.
        let mix = WorkloadMix { n_chunks: 100_000, zipf_skew: 0.5, ..WorkloadMix::read_heavy() };
        let out = run_small(mix, 300, 8);
        let mean_util: f64 = out.trace.cpu.iter().map(|c| c.utilization).sum::<f64>()
            / out.trace.cpu.len() as f64;
        assert!(
            (0.005..0.25).contains(&mean_util),
            "per-request CPU utilization {mean_util}"
        );
    }

    #[test]
    fn memory_records_match_table_two_ratios() {
        let out = run_small(WorkloadMix::read_heavy(), 100, 9);
        for m in &out.trace.memory {
            assert_eq!(m.size, 64 * 1024 / 4); // 16 KB per 64 KB read
            assert_eq!(m.op, IoOp::Read);
        }
        let out = run_small(WorkloadMix::write_heavy(), 50, 9);
        for m in &out.trace.memory {
            assert_eq!(m.size, 4 * 1024 * 1024 / 16); // 256 KB per 4 MB write
            assert_eq!(m.op, IoOp::Write);
        }
    }

    #[test]
    fn master_path_disabled_by_default() {
        let out = run_small(WorkloadMix::read_heavy(), 100, 30);
        assert_eq!(out.stats.metadata_hit_ratio, 1.0);
        assert_eq!(out.stats.master_utilization, 0.0);
        // No master.lookup phases.
        for tree in out.trace.span_trees() {
            assert!(!tree.phase_sequence().contains(&"master.lookup"));
        }
    }

    #[test]
    fn master_path_adds_lookup_phase_on_misses() {
        let mut config = ClusterConfig::small();
        config.consult_master = true;
        config.workload = WorkloadMix { n_chunks: 100_000, zipf_skew: 0.5, ..WorkloadMix::read_heavy() };
        let mut cluster = Cluster::new(&config).unwrap();
        let out = cluster.run(300, 31);
        assert_eq!(out.stats.completed, 300);
        // Cold, huge working set: almost every lookup misses.
        assert!(out.stats.metadata_hit_ratio < 0.1, "hit {}", out.stats.metadata_hit_ratio);
        assert!(out.stats.master_utilization > 0.0);
        let with_lookup = out
            .trace
            .span_trees()
            .iter()
            .filter(|t| t.phase_sequence().first() == Some(&"master.lookup"))
            .count();
        assert!(with_lookup > 250, "only {with_lookup} requests consulted the master");
    }

    #[test]
    fn metadata_cache_absorbs_hot_lookups() {
        let mut config = ClusterConfig::small();
        config.consult_master = true;
        config.workload = WorkloadMix { n_chunks: 50, ..WorkloadMix::read_heavy() };
        let mut cluster = Cluster::new(&config).unwrap();
        let out = cluster.run(1000, 32);
        // 50 chunks, 256-entry caches: everything hits after warmup.
        assert!(out.stats.metadata_hit_ratio > 0.8, "hit {}", out.stats.metadata_hit_ratio);
    }

    #[test]
    fn master_consult_increases_latency() {
        let mix = WorkloadMix { n_chunks: 100_000, zipf_skew: 0.5, ..WorkloadMix::read_heavy() };
        let mut with_cfg = ClusterConfig::small();
        with_cfg.consult_master = true;
        with_cfg.workload = mix;
        let with_master = Cluster::new(&with_cfg).unwrap().run(300, 33);
        let mut without_cfg = ClusterConfig::small();
        without_cfg.workload = mix;
        let without = Cluster::new(&without_cfg).unwrap().run(300, 33);
        assert!(
            with_master.stats.latency_secs.mean() > without.stats.latency_secs.mean(),
            "with {} without {}",
            with_master.stats.latency_secs.mean(),
            without.stats.latency_secs.mean()
        );
    }

    #[test]
    fn per_server_views_partition_the_trace() {
        let mut config = ClusterConfig::cluster(3);
        config.workload = WorkloadMix::mixed();
        let out = Cluster::new(&config).unwrap().run(400, 11);
        let views = out.server_views();
        assert_eq!(views.len(), 3);
        let total: usize = views.iter().map(|v| v.len()).sum();
        assert_eq!(total, out.trace.len());
        // Each view is time-sorted, like the whole-cluster trace.
        for view in &views {
            for w in view.network.windows(2) {
                assert!(w[0].ts_nanos <= w[1].ts_nanos);
            }
            for w in view.storage.windows(2) {
                assert!(w[0].ts_nanos <= w[1].ts_nanos);
            }
        }
    }

    #[test]
    fn run_trials_matches_serial_runs() {
        let mut config = ClusterConfig::small();
        config.workload = WorkloadMix::mixed();
        let trials = [
            Trial { n_requests: 150, seed: 5 },
            Trial { n_requests: 150, seed: 6 },
            Trial { n_requests: 80, seed: 7 },
        ];
        let parallel = Cluster::run_trials(&config, &trials).unwrap();
        for (trial, out) in trials.iter().zip(&parallel) {
            let serial = Cluster::new(&config).unwrap().run(trial.n_requests, trial.seed);
            assert_eq!(out.trace, serial.trace, "seed {}", trial.seed);
            assert_eq!(out.requests, serial.requests, "seed {}", trial.seed);
        }
    }

    #[test]
    fn zero_requests_is_empty() {
        let out = run_small(WorkloadMix::mixed(), 0, 1);
        assert_eq!(out.stats.completed, 0);
        assert!(out.trace.is_empty());
    }
}
