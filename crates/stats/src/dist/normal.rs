//! Normal and log-normal distributions. Log-normal is the workhorse for DC
//! service times and object sizes (moderate tails); normal backs CPU
//! utilization noise and the Gaussian emissions of HMMs.


use super::{assert_probability, require_positive, Distribution};
use crate::special::{normal_cdf, normal_pdf, normal_quantile};
use crate::{Result, StatsError};

/// Normal distribution `N(μ, σ²)`.
///
/// ```
/// use kooza_stats::dist::{Distribution, Normal};
/// let d = Normal::new(10.0, 2.0)?;
/// assert!((d.cdf(10.0) - 0.5).abs() < 1e-12);
/// # Ok::<(), kooza_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates `N(mu, sigma²)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `sigma` is finite and
    /// positive and `mu` is finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter { name: "mu", value: mu });
        }
        require_positive("sigma", sigma)?;
        Ok(Normal { mu, sigma })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal { mu: 0.0, sigma: 1.0 }
    }

    /// Location parameter μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        normal_pdf((x - self.mu) / self.sigma) / self.sigma
    }

    fn cdf(&self, x: f64) -> f64 {
        normal_cdf((x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        assert!(p > 0.0 && p < 1.0, "normal quantile undefined at p = {p}");
        self.mu + self.sigma * normal_quantile(p)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    fn name(&self) -> &'static str {
        "normal"
    }

    fn log_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        -0.5 * z * z - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }
}

/// Log-normal distribution: `ln X ~ N(μ, σ²)`.
///
/// ```
/// use kooza_stats::dist::{Distribution, LogNormal};
/// let d = LogNormal::new(0.0, 1.0)?;
/// // Median of a lognormal is e^μ.
/// assert!((d.quantile(0.5) - 1.0).abs() < 1e-9);
/// # Ok::<(), kooza_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal whose logarithm is `N(mu, sigma²)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `sigma` is finite and
    /// positive and `mu` is finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter { name: "mu", value: mu });
        }
        require_positive("sigma", sigma)?;
        Ok(LogNormal { mu, sigma })
    }

    /// Log-space location μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space scale σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        normal_pdf(z) / (x * self.sigma)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        if p == 0.0 {
            return 0.0;
        }
        assert!(p < 1.0, "lognormal quantile undefined at p = 1");
        (self.mu + self.sigma * normal_quantile(p)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn name(&self) -> &'static str {
        "lognormal"
    }

    fn log_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        -0.5 * z * z - x.ln() - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kooza_sim::rng::Rng64;

    #[test]
    fn normal_basic_properties() {
        let d = Normal::new(5.0, 2.0).unwrap();
        assert_eq!(d.mean(), 5.0);
        assert_eq!(d.variance(), 4.0);
        assert!((d.cdf(5.0) - 0.5).abs() < 1e-12);
        assert!((d.cdf(7.0) - 0.841_344_746).abs() < 1e-6);
    }

    #[test]
    fn normal_quantile_round_trip() {
        let d = Normal::new(-2.0, 0.5).unwrap();
        for p in [0.01, 0.2, 0.5, 0.8, 0.99] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn normal_sampling_moments() {
        let d = Normal::new(3.0, 1.5).unwrap();
        let mut rng = Rng64::new(21);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 2.25).abs() < 0.1, "var {var}");
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn lognormal_support_is_positive() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.pdf(0.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
        assert!(d.pdf(1.0) > 0.0);
    }

    #[test]
    fn lognormal_mean_variance_formulas() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let mut rng = Rng64::new(22);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() / d.mean() < 0.02, "mean {mean} vs {}", d.mean());
    }

    #[test]
    fn lognormal_quantile_round_trip() {
        let d = LogNormal::new(2.0, 0.3).unwrap();
        for p in [0.05, 0.5, 0.95] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-9);
        }
        assert_eq!(d.quantile(0.0), 0.0);
    }

    #[test]
    fn normal_log_pdf_consistency() {
        let d = Normal::new(1.0, 2.0).unwrap();
        for x in [-3.0, 0.0, 1.0, 4.0] {
            assert!((d.log_pdf(x) - d.pdf(x).ln()).abs() < 1e-10);
        }
    }

    #[test]
    fn lognormal_log_pdf_consistency() {
        let d = LogNormal::new(0.5, 0.8).unwrap();
        for x in [0.1, 1.0, 5.0] {
            assert!((d.log_pdf(x) - d.pdf(x).ln()).abs() < 1e-10);
        }
        assert_eq!(d.log_pdf(0.0), f64::NEG_INFINITY);
    }
}
