//! Committed golden fixtures pinning the KTC encoding.
//!
//! `fixtures/golden.jsonl` and `fixtures/golden.ktc` hold the *same*
//! canonical trace in both formats. The byte-identity tests below catch
//! accidental format drift the way `golden_jsonl.rs` pins the JSONL wire
//! format: any change to the KTC encoding (block order, column order,
//! varint scheme, interning) fails here and forces a deliberate version
//! bump instead of a silent incompatibility.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! KOOZA_REGEN_FIXTURES=1 cargo test -p kooza-trace --test ktc_golden
//! ```

use std::path::PathBuf;

use kooza_trace::record::{CpuRecord, Direction, IoOp, MemoryRecord, NetworkRecord, StorageRecord};
use kooza_trace::span::{Span, SpanId, TraceId};
use kooza_trace::store::TraceSet;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The canonical fixture trace: every stream populated, root and child
/// spans, an annotation, a repeated span name (exercising interning) and
/// one extreme-width value per varint-encoded column family.
fn fixture_set() -> TraceSet {
    let mut ts = TraceSet::new();
    ts.storage.push(StorageRecord {
        ts_nanos: 123,
        lbn: 456,
        size: 4096,
        op: IoOp::Write,
        request_id: 7,
    });
    ts.storage.push(StorageRecord {
        ts_nanos: 150,
        lbn: u64::MAX,
        size: 0,
        op: IoOp::Read,
        request_id: 8,
    });
    ts.cpu.push(CpuRecord {
        ts_nanos: 1,
        utilization: 0.25,
        busy_nanos: 500,
        request_id: 7,
    });
    ts.memory.push(MemoryRecord {
        ts_nanos: 2,
        bank: 3,
        size: 64,
        op: IoOp::Read,
        request_id: 7,
    });
    ts.network.push(NetworkRecord {
        ts_nanos: 3,
        size: 65536,
        direction: Direction::Ingress,
        request_id: 7,
    });
    ts.network.push(NetworkRecord {
        ts_nanos: 3,
        size: 128,
        direction: Direction::Egress,
        request_id: 7,
    });
    ts.spans.push(Span::new(TraceId(3), SpanId(0), None, "request", 0, 10));
    let mut span = Span::new(TraceId(3), SpanId(1), Some(SpanId(0)), "disk", 5, 9);
    span.annotate(6, "seek");
    ts.spans.push(span);
    ts.spans.push(Span::new(TraceId(4), SpanId(0), None, "request", 11, 20));
    ts
}

fn regen() -> bool {
    std::env::var_os("KOOZA_REGEN_FIXTURES").is_some()
}

#[test]
fn jsonl_fixture_bytes_are_pinned() {
    let path = fixture_dir().join("golden.jsonl");
    let mut current = Vec::new();
    fixture_set().write_jsonl(&mut current).unwrap();
    if regen() {
        std::fs::write(&path, &current).unwrap();
        return;
    }
    let committed = std::fs::read(&path).unwrap();
    assert_eq!(
        committed, current,
        "JSONL encoding drifted from the committed fixture {path:?}"
    );
}

#[test]
fn ktc_fixture_bytes_are_pinned() {
    let path = fixture_dir().join("golden.ktc");
    let mut current = Vec::new();
    fixture_set().write_ktc(&mut current).unwrap();
    if regen() {
        std::fs::write(&path, &current).unwrap();
        return;
    }
    let committed = std::fs::read(&path).unwrap();
    assert_eq!(
        committed, current,
        "KTC encoding drifted from the committed fixture {path:?} — if the \
         format change is intentional, bump the container version and \
         regenerate with KOOZA_REGEN_FIXTURES=1"
    );
}

#[test]
fn both_fixtures_decode_to_the_same_trace() {
    if regen() {
        // Fixtures are being rewritten by the sibling tests in this same
        // run; checking them now would race the writes.
        return;
    }
    let jsonl = std::fs::read(fixture_dir().join("golden.jsonl")).unwrap();
    let ktc = std::fs::read(fixture_dir().join("golden.ktc")).unwrap();
    let via_jsonl = TraceSet::read_jsonl(jsonl.as_slice()).unwrap();
    let via_ktc = TraceSet::read_ktc(ktc.as_slice()).unwrap();
    assert_eq!(via_jsonl, via_ktc, "committed fixtures disagree across formats");
    assert_eq!(via_ktc, fixture_set(), "fixtures drifted from the in-code canonical trace");
}
