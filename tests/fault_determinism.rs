//! Fault-injection determinism regression: with a nonzero fault plan, the
//! per-request outcome log and the stripped `--obs` report must be
//! byte-identical whether the `kooza-exec` pool runs 1, 2 or 8 workers.
//!
//! The fault plan is generated with `Rng64::for_stream` keyed by the spec
//! seed, client retries consume a per-trial fault stream, and the fault
//! counters are published as commutative adds — so nothing about crashes,
//! failovers, re-replication or degraded-disk slowdowns may depend on the
//! worker schedule.

use kooza::fault_drift;
use kooza_gfs::{Cluster, ClusterConfig, FaultSpec, Trial, WorkloadMix};
use kooza_obs::strip_nondeterministic;

const SEED: u64 = 4011;

fn faulty_config() -> ClusterConfig {
    let mut config = ClusterConfig::cluster(4);
    config.workload = WorkloadMix {
        mean_interarrival_secs: 0.05,
        ..WorkloadMix::mixed()
    };
    config.faults = Some(
        FaultSpec::parse("mttf=2,mttr=0.5,timeout=0.3,retries=10,detect=0.1")
            .expect("valid fault spec"),
    );
    config
}

/// One instrumented pass: parallel fault-injected trials plus a
/// healthy-vs-faulty drift report. Returns `(outcome log, raw obs JSONL)`;
/// the log carries every per-request field the fault path touches.
fn instrumented_faulty_run() -> (String, String) {
    kooza_obs::global::enable();

    let config = faulty_config();
    let trials = [
        Trial { n_requests: 400, seed: SEED },
        Trial { n_requests: 300, seed: SEED + 1 },
        Trial { n_requests: 200, seed: SEED + 2 },
    ];
    let outcomes = Cluster::run_trials(&config, &trials).expect("valid config");

    let mut log = String::new();
    for (trial, outcome) in trials.iter().zip(&outcomes) {
        for r in &outcome.requests {
            log += &format!(
                "{{\"trial\":{},\"id\":{},\"read\":{},\"size\":{},\"latency\":{},\
                 \"cpu\":{},\"cache\":{},\"retries\":{},\"faulted\":{},\"failed\":{}}}\n",
                trial.seed,
                r.id,
                r.is_read,
                r.size,
                r.latency_nanos,
                r.cpu_busy_nanos,
                r.cache_hit,
                r.retries,
                r.faulted,
                r.failed,
            );
        }
        log += &format!(
            "trial {}: completed {} faults {:?}\n",
            trial.seed, outcome.stats.completed, outcome.stats.faults,
        );
    }

    // The drift harness trains KOOZA on both a healthy and a faulty trace;
    // its rendered table pins the whole model pipeline under faults.
    let drift = fault_drift(
        &ClusterConfig::cluster(4),
        FaultSpec::parse("mttf=3,mttr=0.5,timeout=0.4,retries=10").expect("valid fault spec"),
        300,
        SEED + 3,
    )
    .expect("drift report");
    log += &drift.render();

    let report = kooza_obs::global::report().expect("enabled");
    kooza_obs::global::disable();
    (log, report.to_jsonl())
}

#[test]
fn fault_injected_runs_are_byte_identical_across_thread_counts() {
    // One #[test] drives all thread counts: the thread override and the
    // observability sink are process-global, so sweeping inside a single
    // test keeps this binary free of cross-test races.
    let mut results = Vec::new();
    for threads in [1usize, 2, 8] {
        kooza_exec::set_thread_override(Some(threads));
        let (log, raw) = instrumented_faulty_run();
        let stripped = strip_nondeterministic(&raw).expect("well-formed JSONL");
        results.push((threads, log, stripped));
    }
    kooza_exec::set_thread_override(None);

    let (_, log_ref, obs_ref) = &results[0];
    // The plan actually fired: retries and faulted requests in the log,
    // fault counters in the stripped report.
    assert!(log_ref.contains("\"faulted\":true"), "no request rode through a fault");
    assert!(log_ref.contains("\"retries\":"), "outcome log lacks retry counts");
    assert!(log_ref.contains("crashes:"), "outcome log lacks fault stats");
    for needle in [
        "gfs.fault.crashes",
        "gfs.fault.retries",
        "gfs.fault.failovers",
        "validate.fault_drift.cases",
        "\"fault_drift\"",
    ] {
        assert!(obs_ref.contains(needle), "stripped report lacks {needle}");
    }
    assert!(!obs_ref.contains("\"wall\""), "strip left wall-clock fields behind");

    for (threads, log, obs) in &results[1..] {
        assert_eq!(log, log_ref, "outcome log at {threads} threads diverged from serial");
        assert_eq!(obs, obs_ref, "stripped obs report at {threads} threads diverged");
    }
}
