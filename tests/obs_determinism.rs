//! Observability determinism regression: the `--obs` report, with its
//! wall-clock fields stripped, must be byte-identical whether the
//! `kooza-exec` pool runs 1, 2 or 8 workers.
//!
//! This is the contract DESIGN.md's "Observability" section states: stage
//! trees, counters, gauges and histograms describe the *work*, not the
//! schedule. Only the clearly-marked `wall` fields (and the whole `meta`
//! and `pool` lines) may vary run-to-run — and `strip_nondeterministic`
//! removes exactly those.

use kooza::class::assemble_observations;
use kooza::crossexam::cross_examine;
use kooza::validate::validate;
use kooza::{Kooza, KoozaFleet, ReplayConfig, WorkloadModel};
use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};
use kooza_obs::strip_nondeterministic;
use kooza_sim::rng::Rng64;

const SEED: u64 = 2011;

/// An instrumented end-to-end run: simulate, train (single model and
/// fleet), generate, validate, cross-examine — every stage span and
/// metric family the workspace emits, including pool profiles from the
/// parallel fan-outs.
fn instrumented_run() -> String {
    kooza_obs::global::enable();

    let mut config = ClusterConfig::small();
    config.workload = WorkloadMix {
        n_chunks: 120,
        ..WorkloadMix::mixed()
    };
    let outcome = Cluster::new(&config).expect("config").run(600, SEED);
    let observations = assemble_observations(&outcome.trace).expect("assembles");
    let model = Kooza::fit(&outcome.trace).expect("trains");
    let mut rng = Rng64::new(SEED + 1);
    let synthetic = model.generate(600, &mut rng);
    let _report = validate(&model, &observations, &synthetic, ReplayConfig::from(&config));
    let _table = cross_examine(
        &[&model],
        &observations,
        ReplayConfig::from(&config),
        600,
        SEED + 2,
    );

    let mut fleet_config = ClusterConfig::cluster(3);
    fleet_config.workload = WorkloadMix {
        read_fraction: 1.0,
        mean_interarrival_secs: 0.01,
        n_chunks: 4000,
        zipf_skew: 0.8,
        ..WorkloadMix::read_heavy()
    };
    let fleet_outcome = Cluster::new(&fleet_config).expect("config").run(2000, SEED + 3);
    let fleet = KoozaFleet::fit_views(&fleet_outcome.server_views()).expect("fleet");
    let mut fleet_rng = Rng64::new(SEED + 4);
    let _streams = fleet.generate_per_server(100, &mut fleet_rng);

    let report = kooza_obs::global::report().expect("enabled");
    kooza_obs::global::disable();
    report.to_jsonl()
}

#[test]
fn stripped_obs_report_is_byte_identical_across_thread_counts() {
    // One #[test] drives all thread counts: both the thread override and
    // the observability sink are process-global, so sweeping inside a
    // single test keeps this binary free of cross-test races.
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 8] {
        kooza_exec::set_thread_override(Some(threads));
        let raw = instrumented_run();
        let stripped = strip_nondeterministic(&raw).expect("well-formed JSONL");
        outputs.push((threads, raw, stripped));
    }
    kooza_exec::set_thread_override(None);

    let (_, raw, reference) = &outputs[0];
    // The report actually contains the instrumentation, raw and stripped.
    for needle in ["\"train\"", "\"generate\"", "\"replay\"", "\"validate\"",
        "\"crossexam\"", "\"fleet.train\"", "\"fleet.generate\"",
        "validate.cases", "gfs.requests_completed", "replay.latency_nanos"]
    {
        assert!(reference.contains(needle), "stripped report lacks {needle}");
    }
    assert!(raw.contains("\"kind\":\"pool\""), "raw report lacks pool profiles");
    assert!(!reference.contains("\"wall\""), "strip left wall-clock fields behind");

    for (threads, _, stripped) in &outputs[1..] {
        assert_eq!(
            stripped, reference,
            "stripped obs report at {threads} threads diverged from serial"
        );
    }
}
