//! EXP-F — Dapper-style sampling holds tracing overhead under ~1.5%.
//!
//! §2.2: Dapper achieves "complete in-depth modeling with marginal
//! performance overhead (less than 1.5% in all cases)" by sampling 1 of
//! 1000 requests. The GFS simulator charges a per-span CPU cost on sampled
//! requests only; we sweep the sampling rate and report the measured CPU
//! overhead fraction, mean latency impact, and span completeness.
//!
//! Each sweep point collects its numbers into a local
//! [`kooza_obs::MetricsRegistry`], and the per-rate snapshots merge into
//! one sweep-wide snapshot at the end — the same mergeable-snapshot
//! machinery the `--obs` flag uses, exercised here as a library.

use kooza_bench::{banner, section, EXPERIMENT_SEED};
use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};
use kooza_obs::{MetricsRegistry, MetricsSnapshot};

/// Request latency buckets, nanoseconds: 1µs … 10s by decades.
const LATENCY_BOUNDS: &[u64] = &[
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// Runs one sweep point and returns its metrics snapshot. Everything the
/// table needs is read back out of the snapshot, not carried separately.
fn measure(rate: u32, n_requests: u64, workload: WorkloadMix, baseline_latency: f64) -> MetricsSnapshot {
    let mut config = ClusterConfig::small();
    config.workload = workload;
    config.trace_sampling = rate;
    config.tracing_overhead_secs = 10e-6;
    let mut cluster = Cluster::new(&config).expect("config");
    let outcome = cluster.run(n_requests, EXPERIMENT_SEED);

    let mut reg = MetricsRegistry::new();
    reg.counter_add("dapper.requests", outcome.requests.len() as u64);
    reg.counter_add(
        "dapper.traced",
        outcome.requests.iter().filter(|r| r.sampled).count() as u64,
    );
    reg.counter_add("dapper.span_trees", outcome.trace.span_trees().len() as u64);
    reg.gauge_set(
        "dapper.cpu_overhead_pct",
        outcome.stats.tracing_overhead_fraction() * 100.0,
    );
    reg.gauge_set(
        "dapper.latency_impact_pct",
        (outcome.stats.latency_secs.mean() - baseline_latency) / baseline_latency * 100.0,
    );
    let latency = reg.histogram_mut("dapper.latency_nanos", LATENCY_BOUNDS);
    for r in &outcome.requests {
        latency.record(r.latency_nanos);
    }
    reg.snapshot()
}

fn main() {
    banner("EXP-F", "Trace-sampling rate vs instrumentation overhead");

    let n_requests = 20_000;
    let base_workload = WorkloadMix {
        n_chunks: 100_000,
        zipf_skew: 0.5,
        ..WorkloadMix::read_heavy()
    };

    // Baseline: tracing disabled entirely (zero per-span cost).
    let mut config = ClusterConfig::small();
    config.workload = base_workload;
    config.tracing_overhead_secs = 0.0;
    let mut cluster = Cluster::new(&config).expect("config");
    let baseline = cluster.run(n_requests, EXPERIMENT_SEED);
    let baseline_latency = baseline.stats.latency_secs.mean();

    section("sampling sweep (per-span CPU cost 10 µs — deliberately heavy)");
    println!(
        "{:>10} {:>10} {:>14} {:>16} {:>18}",
        "sampling", "traced", "CPU overhead", "latency impact", "spans complete?"
    );
    let mut sweep = MetricsSnapshot::default();
    for rate in [1u32, 10, 100, 1000] {
        let snap = measure(rate, n_requests, base_workload, baseline_latency);
        let traced = snap.counter("dapper.traced").unwrap_or(0);
        // Completeness: every sampled request yields a full span tree.
        let complete = snap.counter("dapper.span_trees") == Some(traced);
        println!(
            "{:>8}:1 {:>10} {:>13.2}% {:>15.2}% {:>18}",
            rate,
            traced,
            snap.gauge("dapper.cpu_overhead_pct").unwrap_or(f64::NAN),
            snap.gauge("dapper.latency_impact_pct").unwrap_or(f64::NAN),
            if complete { "yes" } else { "NO" }
        );
        sweep = sweep.merge(&snap);
    }

    section("sweep totals (merged snapshots)");
    let requests = sweep.counter("dapper.requests").unwrap_or(0);
    let traced = sweep.counter("dapper.traced").unwrap_or(0);
    let latency = sweep.histogram("dapper.latency_nanos").expect("recorded");
    println!(
        "requests {requests}, traced {traced} ({:.2}% overall), latency p-mass over 1ms: {:.1}%",
        traced as f64 / requests as f64 * 100.0,
        latency.fraction_above(1_000_000) * 100.0,
    );
    println!(
        "\npaper claim (Dapper): 1/1000 sampling keeps overhead far below\n\
         1.5% while sampled traces stay complete — the bottom row shows\n\
         both, even with a per-span cost chosen to make tracing expensive."
    );
}
