//! Trace ingest benchmarks: JSONL text vs KTC binary columnar.
//!
//! The cross-examination pipeline is trace-in, model-out; at roadmap
//! scales parsing dominates `fit`/`validate` wall-clock long before the
//! models do. These benches measure both serialization paths over the
//! same ≥100k-span synthetic trace — write MB/s, read MB/s, and the
//! end-to-end `kooza fit` (parse + train) — so `BENCH_trace.json`
//! documents the KTC speedup and `--baseline` diffs catch regressions.
//!
//! Archived report: `KOOZA_BENCH_JSON=BENCH_trace.json cargo bench \
//! -p kooza-bench --bench trace_ingest`; compare a later run with
//! `cargo bench -p kooza-bench --bench trace_ingest -- --baseline \
//! BENCH_trace.json`.

use std::hint::black_box;

use kooza::{Kooza, WorkloadModel};
use kooza_bench::harness::Harness;
use kooza_sim::rng::Rng64;
use kooza_trace::{
    CpuRecord, Direction, IoOp, MemoryRecord, NetworkRecord, Span, SpanId, StorageRecord,
    TraceId, TraceSet,
};

/// Requests in the benchmark trace. Seven spans per request puts the
/// span count at 140k — comfortably past the 100k-span bar the ingest
/// acceptance criteria are stated against.
const REQUESTS: u64 = 20_000;

/// A synthetic trace with the GFS simulator's shape (per-request span
/// tree plus per-subsystem records), generated directly so the benches
/// measure serialization, not simulation.
fn synthetic_trace(requests: u64) -> TraceSet {
    let mut rng = Rng64::new(4242);
    let mut ts = TraceSet::new();
    let names = ["master.lookup", "cache.probe", "chunkserver.read", "disk.io", "net.reply"];
    let mut t = 0u64;
    for r in 0..requests {
        t += 20_000 + rng.next_bounded(80_000);
        let start = t;
        let service = 200_000 + rng.next_bounded(1_800_000);
        let end = start + service;
        ts.network.push(NetworkRecord {
            ts_nanos: start,
            size: 512 + rng.next_bounded(65_536),
            direction: Direction::Ingress,
            request_id: r,
        });
        ts.network.push(NetworkRecord {
            ts_nanos: end,
            size: 128 + rng.next_bounded(4_096),
            direction: Direction::Egress,
            request_id: r,
        });
        ts.cpu.push(CpuRecord {
            ts_nanos: start + 1_000,
            utilization: rng.next_f64(),
            busy_nanos: service / 4,
            request_id: r,
        });
        ts.memory.push(MemoryRecord {
            ts_nanos: start + 2_000,
            bank: rng.next_bounded(8) as u32,
            size: 64,
            op: IoOp::Read,
            request_id: r,
        });
        ts.storage.push(StorageRecord {
            ts_nanos: start + 3_000,
            lbn: rng.next_bounded(1 << 30),
            size: 4_096 << rng.next_bounded(4),
            op: if rng.next_bounded(4) == 0 { IoOp::Write } else { IoOp::Read },
            request_id: r,
        });
        let mut root = Span::new(TraceId(r), SpanId(0), None, "request", start, end);
        root.annotate(start + 500, "queued");
        ts.spans.push(root);
        let step = service / (names.len() as u64 + 1);
        for (i, name) in names.iter().enumerate() {
            let s = start + step * (i as u64 + 1);
            ts.spans.push(Span::new(
                TraceId(r),
                SpanId(i as u64 + 1),
                Some(SpanId(0)),
                *name,
                s,
                s + step,
            ));
        }
        ts.spans.push(Span::new(
            TraceId(r),
            SpanId(names.len() as u64 + 1),
            Some(SpanId(1)),
            "disk.io",
            start + step,
            start + step + step / 2,
        ));
    }
    ts
}

fn main() {
    let mut h = Harness::from_args();
    let trace = synthetic_trace(REQUESTS);
    assert!(trace.spans.len() >= 100_000, "bench trace too small: {}", trace.spans.len());

    let mut jsonl = Vec::new();
    trace.write_jsonl(&mut jsonl).unwrap();
    let mut ktc = Vec::new();
    trace.write_ktc(&mut ktc).unwrap();
    println!(
        "trace: {} spans, {} records | jsonl {:.1} MB, ktc {:.1} MB ({:.1}x smaller)\n",
        trace.spans.len(),
        trace.len(),
        jsonl.len() as f64 / 1e6,
        ktc.len() as f64 / 1e6,
        jsonl.len() as f64 / ktc.len() as f64,
    );

    // Write throughput, measured against each format's own output size.
    h.bench_throughput("trace_write_jsonl", jsonl.len() as u64, |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(jsonl.len());
            trace.write_jsonl(&mut out).unwrap();
            black_box(out.len())
        })
    });
    h.bench_throughput("trace_write_ktc", ktc.len() as u64, |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(ktc.len());
            trace.write_ktc(&mut out).unwrap();
            black_box(out.len())
        })
    });

    // Read (ingest) throughput — the number the ≥5x acceptance bar is
    // stated against, normalized to the *same* logical trace by charging
    // both parsers the JSONL byte size.
    h.bench_throughput("trace_read_jsonl", jsonl.len() as u64, |b| {
        b.iter(|| black_box(TraceSet::read_jsonl(jsonl.as_slice()).unwrap().len()))
    });
    h.bench_throughput("trace_read_ktc_equiv_mb", jsonl.len() as u64, |b| {
        b.iter(|| black_box(TraceSet::read_ktc(ktc.as_slice()).unwrap().len()))
    });
    // And against its own (smaller) wire size, for the raw decode rate.
    h.bench_throughput("trace_read_ktc", ktc.len() as u64, |b| {
        b.iter(|| black_box(TraceSet::read_ktc(ktc.as_slice()).unwrap().len()))
    });

    // `kooza fit` end to end: parse the serialized trace, train KOOZA.
    h.bench_function("fit_e2e_jsonl", |b| {
        b.iter(|| {
            let ts = TraceSet::read_jsonl(jsonl.as_slice()).unwrap();
            black_box(Kooza::fit(&ts).unwrap().parameter_count())
        })
    });
    h.bench_function("fit_e2e_ktc", |b| {
        b.iter(|| {
            let ts = TraceSet::read_ktc(ktc.as_slice()).unwrap();
            black_box(Kooza::fit(&ts).unwrap().parameter_count())
        })
    });

    h.finish();
}
