//! Maximum-likelihood distribution fitting and the KS-ranked fitting
//! pipeline.
//!
//! This is the Feitelson methodology end to end: propose candidate
//! families, fit each by MLE, rank by Kolmogorov–Smirnov distance, and
//! report the ranking so a modeler can inspect (not just trust) the winner.

use crate::dist::{
    Distribution, Exponential, Gamma, LogNormal, Normal, Pareto, Uniform, Weibull,
};
use crate::ks::{ks_one_sample_presorted, KsTest};
use crate::sorted::SortedSample;
use crate::special::digamma;
use crate::{ensure_finite, ensure_len, Result, StatsError};

/// One-pass moment sums over a sample, shared by every fit estimator.
///
/// Σx, min/max, and — when the data are strictly positive — the per-point
/// logs with their sum. [`FitPipeline::run`] computes this once and hands
/// it to each candidate family, so the lognormal, Weibull and gamma fitters
/// no longer re-walk and re-log the same data. All sums fold in input
/// order, so estimates are bit-identical to the per-fitter passes they
/// replace.
#[derive(Debug, Clone)]
pub struct SampleMoments {
    n: usize,
    sum: f64,
    min: f64,
    max: f64,
    /// `ln(x)` per point, in input order; `None` unless every x > 0.
    logs: Option<Vec<f64>>,
    sum_log: f64,
}

impl SampleMoments {
    /// Computes the shared sums in one pass over `data` (plus one log pass
    /// when the data are strictly positive).
    pub fn compute(data: &[f64]) -> Self {
        let sum = data.iter().sum::<f64>();
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let logs: Option<Vec<f64>> = if !data.is_empty() && data.iter().all(|&x| x > 0.0) {
            Some(data.iter().map(|x| x.ln()).collect())
        } else {
            None
        };
        let sum_log = logs.as_deref().map_or(0.0, |l| l.iter().sum());
        SampleMoments { n: data.len(), sum, min, max, logs, sum_log }
    }

    /// Sample size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample mean Σx / n.
    pub fn mean(&self) -> f64 {
        self.sum / self.n as f64
    }

    /// Smallest value.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest value.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Per-point logs in input order, if the data are strictly positive.
    pub fn logs(&self) -> Option<&[f64]> {
        self.logs.as_deref()
    }

    /// Mean of the logs Σln x / n, if the data are strictly positive.
    pub fn mean_log(&self) -> Option<f64> {
        self.logs.as_ref().map(|_| self.sum_log / self.n as f64)
    }
}

/// The positive-support families share this rejection.
fn logs_or_reject(m: &SampleMoments) -> Result<&[f64]> {
    m.logs().ok_or_else(|| {
        StatsError::InvalidInput("this family requires strictly positive data".into())
    })
}

/// MLE fit of an exponential distribution (`rate = 1 / mean`).
///
/// # Errors
///
/// Errors on empty/non-finite input or a non-positive sample mean.
pub fn fit_exponential(data: &[f64]) -> Result<Exponential> {
    ensure_len(data, 1)?;
    ensure_finite(data)?;
    fit_exponential_with(data, &SampleMoments::compute(data))
}

fn fit_exponential_with(data: &[f64], m: &SampleMoments) -> Result<Exponential> {
    ensure_len(data, 1)?;
    let mean = m.mean();
    if mean <= 0.0 {
        return Err(StatsError::InvalidInput("exponential fit needs positive mean".into()));
    }
    Exponential::with_mean(mean)
}

/// MLE fit of a normal distribution (`μ = mean`, `σ² = Σ(x-μ)²/n`).
///
/// # Errors
///
/// Errors on fewer than two points, non-finite input, or zero variance.
pub fn fit_normal(data: &[f64]) -> Result<Normal> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    fit_normal_with(data, &SampleMoments::compute(data))
}

fn fit_normal_with(data: &[f64], m: &SampleMoments) -> Result<Normal> {
    ensure_len(data, 2)?;
    let mu = m.mean();
    let var = data.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / data.len() as f64;
    Normal::new(mu, var.sqrt())
}

/// MLE fit of a log-normal distribution (normal fit of the logs).
///
/// # Errors
///
/// Errors unless the data are strictly positive with at least two points.
pub fn fit_lognormal(data: &[f64]) -> Result<LogNormal> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    fit_lognormal_with(data, &SampleMoments::compute(data))
}

fn fit_lognormal_with(data: &[f64], m: &SampleMoments) -> Result<LogNormal> {
    ensure_len(data, 2)?;
    let logs = logs_or_reject(m)?;
    let mu = m.mean_log().expect("logs present");
    let var = logs.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / logs.len() as f64;
    LogNormal::new(mu, var.sqrt())
}

/// MLE fit of a Pareto distribution (`x_m = min`, `α = n / Σ ln(x/x_m)`).
///
/// # Errors
///
/// Errors unless the data are strictly positive with at least two points and
/// not all identical.
pub fn fit_pareto(data: &[f64]) -> Result<Pareto> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    fit_pareto_with(data, &SampleMoments::compute(data))
}

fn fit_pareto_with(data: &[f64], m: &SampleMoments) -> Result<Pareto> {
    ensure_len(data, 2)?;
    logs_or_reject(m)?;
    let xm = m.min();
    let sum_log: f64 = data.iter().map(|&x| (x / xm).ln()).sum();
    if sum_log <= 0.0 {
        return Err(StatsError::InvalidInput("pareto fit needs non-degenerate data".into()));
    }
    Pareto::new(xm, data.len() as f64 / sum_log)
}

/// MLE fit of a Weibull distribution by Newton iteration on the shape.
///
/// # Errors
///
/// Errors unless the data are strictly positive with at least two points,
/// or if the iteration fails to converge.
pub fn fit_weibull(data: &[f64]) -> Result<Weibull> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    fit_weibull_with(data, &SampleMoments::compute(data))
}

fn fit_weibull_with(data: &[f64], m: &SampleMoments) -> Result<Weibull> {
    ensure_len(data, 2)?;
    let logs = logs_or_reject(m)?;
    let n = data.len() as f64;
    let mean_log = m.mean_log().expect("logs present");
    // Initial guess from the method of moments on logs:
    // Var(ln X) = π²/(6k²) for Weibull.
    let var_log = logs.iter().map(|x| (x - mean_log).powi(2)).sum::<f64>() / n;
    let mut k = if var_log > 0.0 {
        (std::f64::consts::PI / (6.0 * var_log).sqrt()).max(0.05)
    } else {
        return Err(StatsError::InvalidInput("weibull fit needs non-degenerate data".into()));
    };
    for _ in 0..200 {
        // g(k) = Σ x^k ln x / Σ x^k − 1/k − mean_log
        let mut s0 = 0.0;
        let mut s1 = 0.0;
        let mut s2 = 0.0;
        for (&x, &lx) in data.iter().zip(logs) {
            let xk = x.powf(k);
            s0 += xk;
            s1 += xk * lx;
            s2 += xk * lx * lx;
        }
        let g = s1 / s0 - 1.0 / k - mean_log;
        let dg = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
        let step = g / dg;
        let next = (k - step).max(k / 4.0).min(k * 4.0);
        if (next - k).abs() < 1e-12 * k.max(1.0) {
            k = next;
            break;
        }
        k = next;
    }
    if !k.is_finite() || k <= 0.0 {
        return Err(StatsError::NoConvergence { what: "weibull shape MLE" });
    }
    let scale = (data.iter().map(|&x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    Weibull::new(k, scale)
}

/// MLE fit of a gamma distribution (Minka's initializer plus Newton steps on
/// the digamma equation).
///
/// # Errors
///
/// Errors unless the data are strictly positive with at least two points.
pub fn fit_gamma(data: &[f64]) -> Result<Gamma> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    fit_gamma_with(data, &SampleMoments::compute(data))
}

fn fit_gamma_with(data: &[f64], m: &SampleMoments) -> Result<Gamma> {
    ensure_len(data, 2)?;
    logs_or_reject(m)?;
    let mean = m.mean();
    let mean_log = m.mean_log().expect("logs present");
    let s = mean.ln() - mean_log;
    if s <= 0.0 {
        return Err(StatsError::InvalidInput("gamma fit needs non-degenerate data".into()));
    }
    let mut k = (3.0 - s + ((s - 3.0).powi(2) + 24.0 * s).sqrt()) / (12.0 * s);
    for _ in 0..50 {
        // Solve ln k − ψ(k) = s.
        let f = k.ln() - digamma(k) - s;
        // d/dk (ln k − ψ(k)) = 1/k − ψ'(k); approximate ψ' numerically.
        let h = 1e-6 * k.max(1e-3);
        let dpsi = (digamma(k + h) - digamma(k - h)) / (2.0 * h);
        let df = 1.0 / k - dpsi;
        let step = f / df;
        let next = (k - step).max(k / 4.0).min(k * 4.0);
        if (next - k).abs() < 1e-12 * k.max(1.0) {
            k = next;
            break;
        }
        k = next;
    }
    if !k.is_finite() || k <= 0.0 {
        return Err(StatsError::NoConvergence { what: "gamma shape MLE" });
    }
    Gamma::new(k, mean / k)
}

/// Fit of a uniform distribution (`lo = min`, `hi = max` widened by half a
/// ULP-scale margin so the maximum stays inside the support).
///
/// # Errors
///
/// Errors on degenerate (constant) data.
pub fn fit_uniform(data: &[f64]) -> Result<Uniform> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    fit_uniform_with(&SampleMoments::compute(data))
}

fn fit_uniform_with(m: &SampleMoments) -> Result<Uniform> {
    if m.n() < 2 {
        return Err(StatsError::InsufficientData { needed: 2, got: m.n() });
    }
    let lo = m.min();
    let hi = m.max();
    let width = hi - lo;
    if width <= 0.0 {
        return Err(StatsError::InvalidInput("uniform fit needs non-constant data".into()));
    }
    Uniform::new(lo, hi + width * 1e-9)
}

/// One fitted candidate in a [`FitReport`].
#[derive(Debug)]
pub struct FitEntry {
    /// Family name (`"exponential"`, `"lognormal"`, ...).
    pub family: &'static str,
    /// The fitted distribution.
    pub dist: Box<dyn Distribution>,
    /// KS test of the data against the fitted distribution.
    pub ks: KsTest,
    /// Mean log-likelihood of the data under the fitted distribution.
    pub mean_log_likelihood: f64,
    /// Free-parameter count of the family (parsimony tie-breaking).
    pub n_params: usize,
}

/// Ranked fitting results, best (smallest KS statistic) first.
#[derive(Debug)]
pub struct FitReport {
    entries: Vec<FitEntry>,
}

impl FitReport {
    /// The best-fitting candidate.
    pub fn best(&self) -> &FitEntry {
        &self.entries[0]
    }

    /// All candidates, best first.
    pub fn entries(&self) -> &[FitEntry] {
        &self.entries
    }

    /// The entry for a specific family, if it fitted successfully.
    pub fn family(&self, name: &str) -> Option<&FitEntry> {
        self.entries.iter().find(|e| e.family == name)
    }

    /// Consumes the report, returning the winning entry by value — so a
    /// caller can keep the fitted distribution without re-fitting it.
    pub fn into_best(self) -> FitEntry {
        self.entries.into_iter().next().expect("FitReport is never empty")
    }
}

/// Which families a [`FitPipeline`] tries: name, fitter, free parameters.
/// Fitters take the raw data plus the pipeline's shared [`SampleMoments`].
type Fitter = fn(&[f64], &SampleMoments) -> Result<Box<dyn Distribution>>;
type Candidate = (&'static str, Fitter, usize);

fn boxed<D: Distribution + 'static>(r: Result<D>) -> Result<Box<dyn Distribution>> {
    r.map(|d| Box::new(d) as Box<dyn Distribution>)
}

/// A distribution-fitting pipeline: candidate families fitted by MLE and
/// ranked by KS distance.
///
/// ```
/// use kooza_sim::rng::Rng64;
/// use kooza_stats::dist::{Distribution, Pareto};
/// use kooza_stats::fit::FitPipeline;
///
/// let d = Pareto::new(1.0, 1.8)?;
/// let mut rng = Rng64::new(12);
/// let data: Vec<f64> = (0..3000).map(|_| d.sample(&mut rng)).collect();
/// let report = FitPipeline::standard().run(&data)?;
/// assert_eq!(report.best().family, "pareto");
/// # Ok::<(), kooza_stats::StatsError>(())
/// ```
#[derive(Debug)]
pub struct FitPipeline {
    candidates: Vec<Candidate>,
}

impl FitPipeline {
    /// The standard candidate set: exponential, lognormal, Pareto, Weibull,
    /// gamma, normal and uniform.
    pub fn standard() -> Self {
        FitPipeline {
            candidates: vec![
                ("exponential", |d, m| boxed(fit_exponential_with(d, m)), 1),
                ("lognormal", |d, m| boxed(fit_lognormal_with(d, m)), 2),
                ("pareto", |d, m| boxed(fit_pareto_with(d, m)), 2),
                ("weibull", |d, m| boxed(fit_weibull_with(d, m)), 2),
                ("gamma", |d, m| boxed(fit_gamma_with(d, m)), 2),
                ("normal", |d, m| boxed(fit_normal_with(d, m)), 2),
                ("uniform", |_, m| boxed(fit_uniform_with(m)), 2),
            ],
        }
    }

    /// A lighter candidate set for positive-valued timing data only
    /// (exponential, lognormal, Pareto, Weibull) — the families the
    /// network-modeling papers actually contrast.
    pub fn timing() -> Self {
        FitPipeline {
            candidates: vec![
                ("exponential", |d, m| boxed(fit_exponential_with(d, m)), 1),
                ("lognormal", |d, m| boxed(fit_lognormal_with(d, m)), 2),
                ("pareto", |d, m| boxed(fit_pareto_with(d, m)), 2),
                ("weibull", |d, m| boxed(fit_weibull_with(d, m)), 2),
            ],
        }
    }

    /// Fits every candidate and ranks by KS statistic, with a parsimony
    /// tie-break: when a family with fewer free parameters fits essentially
    /// as well as the leader (KS statistic within 15% relative), the simpler
    /// family is preferred. Without this, Weibull (which *contains*
    /// exponential at shape 1) would absorb every exponential sample.
    ///
    /// Families that fail to fit (wrong support, no convergence) are
    /// silently dropped — a pipeline over arbitrary trace data must tolerate
    /// that.
    ///
    /// # Errors
    ///
    /// Errors if the input is unusable for *every* candidate, or empty.
    pub fn run(&self, data: &[f64]) -> Result<FitReport> {
        ensure_len(data, 2)?;
        ensure_finite(data)?;
        // One moment pass and one sort, shared by every candidate: the KS
        // ranking loop is O(k·n) instead of k sorts of the same data.
        let moments = SampleMoments::compute(data);
        let sorted = SortedSample::from_validated(data.to_vec());
        let mut entries = Vec::new();
        for &(name, fitter, n_params) in &self.candidates {
            let Ok(dist) = fitter(data, &moments) else { continue };
            let ks = ks_one_sample_presorted(&sorted, dist.as_ref());
            let mean_log_likelihood = dist.mean_log_likelihood(data);
            entries.push(FitEntry {
                family: name,
                dist,
                ks,
                mean_log_likelihood,
                n_params,
            });
        }
        if entries.is_empty() {
            return Err(StatsError::InvalidInput("no candidate family fit the data".into()));
        }
        entries.sort_by(|a, b| a.ks.statistic.total_cmp(&b.ks.statistic));
        // Parsimony: pull the simplest near-tied family to the front. Two KS
        // statistics closer than the sampling noise floor (~0.6/√n) are
        // statistically indistinguishable, so the extra parameter buys
        // nothing real.
        let noise_floor = 0.6 / (data.len() as f64).sqrt();
        let tie_threshold =
            entries[0].ks.statistic + (entries[0].ks.statistic * 0.15).max(noise_floor);
        let winner = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.ks.statistic <= tie_threshold)
            .min_by_key(|(i, e)| (e.n_params, *i))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if winner != 0 {
            let e = entries.remove(winner);
            entries.insert(0, e);
        }
        Ok(FitReport { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kooza_sim::rng::Rng64;

    fn sample<D: Distribution>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng64::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn exponential_fit_recovers_rate() {
        let d = Exponential::new(3.0).unwrap();
        let fitted = fit_exponential(&sample(&d, 20_000, 1)).unwrap();
        assert!((fitted.rate() - 3.0).abs() < 0.1, "rate {}", fitted.rate());
    }

    #[test]
    fn normal_fit_recovers_params() {
        let d = Normal::new(-4.0, 2.5).unwrap();
        let fitted = fit_normal(&sample(&d, 20_000, 2)).unwrap();
        assert!((fitted.mu() + 4.0).abs() < 0.1);
        assert!((fitted.sigma() - 2.5).abs() < 0.1);
    }

    #[test]
    fn lognormal_fit_recovers_params() {
        let d = LogNormal::new(1.0, 0.7).unwrap();
        let fitted = fit_lognormal(&sample(&d, 20_000, 3)).unwrap();
        assert!((fitted.mu() - 1.0).abs() < 0.05);
        assert!((fitted.sigma() - 0.7).abs() < 0.05);
    }

    #[test]
    fn pareto_fit_recovers_params() {
        let d = Pareto::new(2.0, 2.5).unwrap();
        let fitted = fit_pareto(&sample(&d, 20_000, 4)).unwrap();
        assert!((fitted.xm() - 2.0).abs() < 0.01);
        assert!((fitted.alpha() - 2.5).abs() < 0.1, "alpha {}", fitted.alpha());
    }

    #[test]
    fn weibull_fit_recovers_params() {
        let d = Weibull::new(1.8, 3.0).unwrap();
        let fitted = fit_weibull(&sample(&d, 20_000, 5)).unwrap();
        assert!((fitted.shape() - 1.8).abs() < 0.1, "shape {}", fitted.shape());
        assert!((fitted.scale() - 3.0).abs() < 0.1, "scale {}", fitted.scale());
    }

    #[test]
    fn gamma_fit_recovers_params() {
        let d = Gamma::new(4.0, 0.5).unwrap();
        let fitted = fit_gamma(&sample(&d, 20_000, 6)).unwrap();
        assert!((fitted.shape() - 4.0).abs() < 0.3, "shape {}", fitted.shape());
        assert!((fitted.scale() - 0.5).abs() < 0.05, "scale {}", fitted.scale());
    }

    #[test]
    fn uniform_fit_covers_range() {
        let d = Uniform::new(5.0, 9.0).unwrap();
        let fitted = fit_uniform(&sample(&d, 10_000, 7)).unwrap();
        assert!((fitted.lo() - 5.0).abs() < 0.01);
        assert!((fitted.hi() - 9.0).abs() < 0.01);
    }

    #[test]
    fn lognormal_rejects_nonpositive() {
        assert!(fit_lognormal(&[1.0, -2.0, 3.0]).is_err());
        assert!(fit_pareto(&[0.0, 1.0]).is_err());
        assert!(fit_weibull(&[-1.0, 1.0]).is_err());
        assert!(fit_gamma(&[0.0, 1.0]).is_err());
    }

    #[test]
    fn degenerate_data_rejected() {
        assert!(fit_uniform(&[2.0, 2.0, 2.0]).is_err());
        assert!(fit_pareto(&[3.0, 3.0, 3.0]).is_err());
    }

    #[test]
    fn pipeline_identifies_each_family() {
        // Distinct-shape cases the pipeline must separate.
        let cases: Vec<(&str, Box<dyn Distribution>)> = vec![
            ("exponential", Box::new(Exponential::new(1.0).unwrap())),
            ("pareto", Box::new(Pareto::new(1.0, 1.5).unwrap())),
            ("normal", Box::new(Normal::new(50.0, 3.0).unwrap())),
            ("uniform", Box::new(Uniform::new(10.0, 20.0).unwrap())),
        ];
        for (i, (family, d)) in cases.iter().enumerate() {
            let mut rng = Rng64::new(100 + i as u64);
            let data: Vec<f64> = (0..4000).map(|_| d.sample(&mut rng)).collect();
            let report = FitPipeline::standard().run(&data).unwrap();
            assert_eq!(report.best().family, *family, "case {family}");
        }
    }

    #[test]
    fn pipeline_tolerates_negative_data() {
        // Negative values knock out the positive-support families but the
        // pipeline still returns normal/uniform candidates.
        let d = Normal::new(0.0, 1.0).unwrap();
        let data = sample(&d, 2000, 8);
        let report = FitPipeline::standard().run(&data).unwrap();
        assert_eq!(report.best().family, "normal");
        assert!(report.family("pareto").is_none());
    }

    #[test]
    fn pipeline_ranks_by_ks() {
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let data = sample(&d, 3000, 9);
        let report = FitPipeline::standard().run(&data).unwrap();
        let stats: Vec<f64> = report.entries().iter().map(|e| e.ks.statistic).collect();
        // Entries after the (possibly parsimony-promoted) winner stay sorted.
        for w in stats[1..].windows(2) {
            assert!(w[0] <= w[1], "not sorted: {stats:?}");
        }
        // The winner is within the parsimony tie window of the true minimum.
        let min = stats.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(stats[0] <= min + (min * 0.15).max(0.6 / (data.len() as f64).sqrt()) + 1e-12);
    }

    #[test]
    fn timing_pipeline_excludes_normal() {
        let d = Exponential::new(1.0).unwrap();
        let data = sample(&d, 1000, 10);
        let report = FitPipeline::timing().run(&data).unwrap();
        assert!(report.family("normal").is_none());
        assert!(report.family("exponential").is_some());
    }
}
