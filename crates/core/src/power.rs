//! A per-subsystem server power model driven by synthetic workloads.
//!
//! §5: "the fact that [in-breadth modeling] relies on system-parameters
//! facilitates the advance to a performance and power model for the DC" —
//! and §3.2 notes in-depth models *cannot* provide this, because they have
//! no per-subsystem demands. This module is that advance: replay a
//! synthetic workload's per-subsystem busy times against active/idle power
//! ratings and get energy, mean power, and the per-subsystem breakdown.
//!
//! Only models that generate real [`PhaseDemand`]s produce non-trivial
//! estimates; an in-depth model's opaque phases carry no subsystem
//! attribution, so its energy collapses onto the unattributed bucket —
//! reproducing the paper's argument mechanically.

use kooza_gfs::{CpuModel, DiskModel, LinkModel, MemoryModel};

use crate::replay::ReplayConfig;
use crate::{PhaseDemand, SyntheticRequest};

/// Active/idle power ratings for one server, watts.
///
/// Defaults approximate a 2010-era 2U server: ~200 W peak, ~120 W idle,
/// with the CPU dominating the dynamic range — the regime that motivated
/// the energy-proportionality literature the paper cites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Chassis/baseline power drawn regardless of activity.
    pub base_w: f64,
    /// Extra power while a CPU core is busy.
    pub cpu_active_w: f64,
    /// Extra power while the disk services an access (seek + transfer).
    pub disk_active_w: f64,
    /// Extra power while the NIC moves data.
    pub net_active_w: f64,
    /// Extra power while the memory system streams data.
    pub mem_active_w: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            base_w: 120.0,
            cpu_active_w: 60.0,
            disk_active_w: 10.0,
            net_active_w: 5.0,
            mem_active_w: 8.0,
        }
    }
}

/// Energy accounting for one replayed workload.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Wall-clock span of the workload, seconds (from inter-arrivals plus
    /// the last request's service).
    pub duration_secs: f64,
    /// Total energy, joules.
    pub total_joules: f64,
    /// Energy attributable to CPU activity.
    pub cpu_joules: f64,
    /// Energy attributable to disk activity.
    pub disk_joules: f64,
    /// Energy attributable to network activity.
    pub net_joules: f64,
    /// Energy attributable to memory activity.
    pub mem_joules: f64,
    /// Baseline (idle chassis) energy.
    pub base_joules: f64,
    /// Busy time in opaque phases that could not be attributed to any
    /// subsystem, seconds (non-zero for in-depth models).
    pub unattributed_secs: f64,
}

impl EnergyReport {
    /// Mean power over the workload, watts.
    pub fn mean_power_w(&self) -> f64 {
        if self.duration_secs > 0.0 {
            self.total_joules / self.duration_secs
        } else {
            0.0
        }
    }

    /// Energy per request, joules.
    pub fn joules_per_request(&self, n_requests: usize) -> f64 {
        if n_requests == 0 {
            0.0
        } else {
            self.total_joules / n_requests as f64
        }
    }

    /// Dynamic (non-baseline) fraction of total energy.
    pub fn dynamic_fraction(&self) -> f64 {
        if self.total_joules > 0.0 {
            (self.total_joules - self.base_joules) / self.total_joules
        } else {
            0.0
        }
    }
}

/// Estimates the energy a synthetic workload draws on a server described
/// by `replay_config` with power ratings `power`.
///
/// Subsystem busy times come from the same hardware models the latency
/// replay uses, so the energy model and the performance model agree on
/// what the hardware was doing — the correlation §5 calls "invaluable when
/// the eventual goal is large-scale simulation".
pub fn estimate_energy(
    requests: &[SyntheticRequest],
    replay_config: ReplayConfig,
    power: &PowerParams,
) -> EnergyReport {
    let mut disk = DiskModel::new(replay_config.disk);
    let mut memory = MemoryModel::new(replay_config.memory);
    let link = LinkModel::new(replay_config.link);
    let _cpu = CpuModel::new(replay_config.cpu);

    let mut cpu_busy = 0.0f64;
    let mut disk_busy = 0.0f64;
    let mut net_busy = 0.0f64;
    let mut mem_busy = 0.0f64;
    let mut unattributed = 0.0f64;
    let mut service_total = 0.0f64;
    let mut arrival_span = 0.0f64;
    let mut last_service = 0.0f64;

    for r in requests {
        arrival_span += r.interarrival_secs.max(0.0);
        let mut this_service = 0.0;
        for phase in &r.phases {
            let secs = match phase {
                PhaseDemand::NetworkIn { bytes } | PhaseDemand::NetworkOut { bytes } => {
                    let s = link.transfer(*bytes).as_secs_f64();
                    net_busy += s;
                    s
                }
                PhaseDemand::Cpu { busy_nanos } => {
                    let s = *busy_nanos as f64 / 1e9;
                    cpu_busy += s;
                    s
                }
                PhaseDemand::Memory { bank, bytes, .. } => {
                    let s = memory.access(*bank, *bytes).as_secs_f64();
                    mem_busy += s;
                    s
                }
                PhaseDemand::Disk { lbn, bytes, .. } => {
                    let s = disk.access(*lbn, *bytes).as_secs_f64();
                    disk_busy += s;
                    s
                }
                PhaseDemand::Opaque { duration_nanos } => {
                    let s = *duration_nanos as f64 / 1e9;
                    unattributed += s;
                    s
                }
            };
            this_service += secs;
        }
        service_total += this_service;
        last_service = this_service;
    }
    // Wall clock: arrivals span plus the tail request draining. For closed
    // or bursty workloads where service outpaces arrivals, the busy time
    // itself bounds the duration from below.
    let duration = (arrival_span + last_service).max(service_total.max(1e-12));

    let cpu_joules = cpu_busy * power.cpu_active_w;
    let disk_joules = disk_busy * power.disk_active_w;
    let net_joules = net_busy * power.net_active_w;
    let mem_joules = mem_busy * power.mem_active_w;
    let base_joules = duration * power.base_w;
    EnergyReport {
        duration_secs: duration,
        total_joules: cpu_joules + disk_joules + net_joules + mem_joules + base_joules,
        cpu_joules,
        disk_joules,
        net_joules,
        mem_joules,
        base_joules,
        unattributed_secs: unattributed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InDepthModel, Kooza, WorkloadModel};
    use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};
    use kooza_sim::rng::Rng64;
    use kooza_trace::record::IoOp;

    fn request(disk_bytes: u64, gap: f64) -> SyntheticRequest {
        SyntheticRequest {
            interarrival_secs: gap,
            phases: vec![
                PhaseDemand::NetworkIn { bytes: 1024 },
                PhaseDemand::Cpu { busy_nanos: 1_000_000 },
                PhaseDemand::Disk { lbn: 1_000_000, bytes: disk_bytes, op: IoOp::Read },
                PhaseDemand::NetworkOut { bytes: disk_bytes },
            ],
        }
    }

    #[test]
    fn energy_scales_with_work() {
        let power = PowerParams::default();
        let light: Vec<SyntheticRequest> = (0..50).map(|_| request(4096, 0.01)).collect();
        let heavy: Vec<SyntheticRequest> =
            (0..50).map(|_| request(4 * 1024 * 1024, 0.01)).collect();
        let el = estimate_energy(&light, ReplayConfig::default(), &power);
        let eh = estimate_energy(&heavy, ReplayConfig::default(), &power);
        assert!(eh.total_joules > el.total_joules);
        assert!(eh.disk_joules > 5.0 * el.disk_joules);
    }

    #[test]
    fn mean_power_bounded_by_ratings() {
        let power = PowerParams::default();
        let reqs: Vec<SyntheticRequest> = (0..100).map(|_| request(65536, 0.005)).collect();
        let e = estimate_energy(&reqs, ReplayConfig::default(), &power);
        let max_power = power.base_w
            + power.cpu_active_w
            + power.disk_active_w
            + power.net_active_w
            + power.mem_active_w;
        assert!(e.mean_power_w() >= power.base_w - 1e-9, "mean {}", e.mean_power_w());
        assert!(e.mean_power_w() <= max_power + 1e-9, "mean {}", e.mean_power_w());
        assert!(e.dynamic_fraction() > 0.0 && e.dynamic_fraction() < 1.0);
    }

    #[test]
    fn idle_workload_draws_baseline_only() {
        let power = PowerParams::default();
        let reqs = vec![SyntheticRequest { interarrival_secs: 10.0, phases: vec![] }];
        let e = estimate_energy(&reqs, ReplayConfig::default(), &power);
        assert!((e.mean_power_w() - power.base_w).abs() < 1e-9);
        assert_eq!(e.dynamic_fraction(), 0.0);
    }

    #[test]
    fn kooza_attributes_energy_but_indepth_cannot() {
        // The §3.2 argument, mechanized: both models train on the same
        // trace; only the feature-bearing one can split energy by
        // subsystem.
        let mut config = ClusterConfig::small();
        config.workload = WorkloadMix::read_heavy();
        let outcome = Cluster::new(&config).unwrap().run(500, 2100);
        let power = PowerParams::default();
        let replay = ReplayConfig::from(&config);

        let kooza = Kooza::fit(&outcome.trace).unwrap();
        let ks = kooza.generate(500, &mut Rng64::new(1));
        let ek = estimate_energy(&ks, replay, &power);
        assert!(ek.disk_joules > 0.0 && ek.cpu_joules > 0.0 && ek.net_joules > 0.0);
        assert!(ek.unattributed_secs < 1e-9);

        let indepth = InDepthModel::fit(&outcome.trace).unwrap();
        let is = indepth.generate(500, &mut Rng64::new(1));
        let ei = estimate_energy(&is, replay, &power);
        assert_eq!(ei.disk_joules, 0.0);
        assert_eq!(ei.cpu_joules, 0.0);
        assert!(ei.unattributed_secs > 1.0, "unattributed {}", ei.unattributed_secs);
    }

    #[test]
    fn joules_per_request_consistent() {
        let power = PowerParams::default();
        let reqs: Vec<SyntheticRequest> = (0..10).map(|_| request(65536, 0.01)).collect();
        let e = estimate_energy(&reqs, ReplayConfig::default(), &power);
        assert!((e.joules_per_request(10) * 10.0 - e.total_joules).abs() < 1e-9);
        assert_eq!(e.joules_per_request(0), 0.0);
    }
}
