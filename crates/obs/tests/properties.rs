//! Property-based invariants for the metrics layer, on the deterministic
//! in-repo `kooza-check` harness.
//!
//! These are the algebraic facts the determinism contract leans on: a
//! histogram is a faithful summary of the values recorded into it,
//! snapshot merging is commutative (so parallel shards can combine in any
//! order), and a snapshot survives the JSON round-trip bit-for-bit.

use kooza_check::gen::{choice, u64_range, vec_of, zip2, Gen};
use kooza_check::{checker, ensure, ensure_eq};
use kooza_json::{FromJson, ToJson};
use kooza_obs::{Histogram, MetricsRegistry, MetricsSnapshot};

/// Shared bucket bounds: small enough that random values exercise every
/// bucket including overflow.
const BOUNDS: &[u64] = &[10, 100, 1_000, 10_000];

/// A random event stream: (metric name, value) pairs.
fn events() -> Gen<Vec<(String, u64)>> {
    let name = choice(vec!["alpha".to_string(), "beta".to_string(), "gamma".to_string()]);
    vec_of(zip2(name, u64_range(0, 50_000)), 0, 48)
}

/// Plays an event stream into a fresh registry: each event bumps its named
/// counter, raises a shared gauge high-water mark and records into a
/// shared histogram — one of every metric kind.
fn snapshot_from(events: &[(String, u64)]) -> MetricsSnapshot {
    let mut reg = MetricsRegistry::new();
    for (name, v) in events {
        reg.counter_add(name, *v);
        reg.gauge_max("peak", *v as f64);
        reg.histogram_record("values", BOUNDS, *v);
    }
    reg.snapshot()
}

#[test]
fn histogram_summarizes_its_inputs_exactly() {
    checker("histogram_summarizes_its_inputs_exactly").run(
        vec_of(u64_range(0, 50_000), 0, 64),
        |values| {
            let mut h = Histogram::new(BOUNDS);
            for &v in values {
                h.record(v);
            }
            // Bucket counts partition the recorded values.
            ensure_eq!(h.counts().iter().sum::<u64>(), h.count());
            ensure_eq!(h.count(), values.len() as u64);
            ensure_eq!(h.sum(), values.iter().sum::<u64>());
            if values.is_empty() {
                ensure_eq!(h.min(), u64::MAX);
                ensure_eq!(h.max(), 0);
            } else {
                ensure_eq!(h.min(), *values.iter().min().unwrap());
                ensure_eq!(h.max(), *values.iter().max().unwrap());
            }
            // At a bucket bound, fraction_above matches a direct count.
            for &b in BOUNDS {
                let direct = values.iter().filter(|&&v| v > b).count() as f64
                    / values.len().max(1) as f64;
                let frac = h.fraction_above(b);
                ensure!((frac - direct).abs() < 1e-12, "above {b}: {frac} vs {direct}");
            }
            // Recording a split stream and merging equals recording whole.
            let (left, right) = values.split_at(values.len() / 2);
            let mut merged = Histogram::new(BOUNDS);
            for &v in left {
                merged.record(v);
            }
            let mut rest = Histogram::new(BOUNDS);
            for &v in right {
                rest.record(v);
            }
            merged.merge_from(&rest);
            ensure_eq!(merged, h);
            Ok(())
        },
    );
}

#[test]
fn snapshot_merge_commutes() {
    checker("snapshot_merge_commutes").run(zip2(events(), events()), |(a, b)| {
        let (sa, sb) = (snapshot_from(a), snapshot_from(b));
        let ab = sa.merge(&sb);
        let ba = sb.merge(&sa);
        ensure_eq!(ab, ba);
        // Byte-identical too — the serialized form is what determinism
        // tests compare.
        ensure_eq!(
            kooza_json::to_string(&ab.to_json()),
            kooza_json::to_string(&ba.to_json())
        );
        // Merging shards equals recording the concatenated stream: the
        // registry could have seen the events in one run.
        let concat: Vec<(String, u64)> = a.iter().chain(b).cloned().collect();
        ensure_eq!(ab, snapshot_from(&concat));
        Ok(())
    });
}

#[test]
fn snapshot_round_trips_through_json() {
    checker("snapshot_round_trips_through_json").run(events(), |events| {
        let snap = snapshot_from(events);
        let text = kooza_json::to_string(&snap.to_json());
        let parsed = kooza_json::parse(&text).map_err(|e| {
            kooza_check::CaseResult::Fail(format!("parse: {e}"))
        })?;
        let back = MetricsSnapshot::from_json(&parsed).map_err(|e| {
            kooza_check::CaseResult::Fail(format!("from_json: {e}"))
        })?;
        ensure_eq!(back, snap);
        ensure_eq!(kooza_json::to_string(&back.to_json()), text);
        Ok(())
    });
}
