//! Sharded-cluster scaling benchmark: the single-engine simulation vs the
//! time-windowed sharded engine on the same million-request workload.
//!
//! Full mode (`cargo bench`) runs the paper-scale 1M-request cluster;
//! smoke mode shrinks to 5k requests so `scripts/verify.sh` can exercise
//! both code paths cheaply. The JSON report (`KOOZA_BENCH_JSON`) stamps
//! the shard count next to the cores/threads stamps, and `--baseline`
//! diffs against an archived `BENCH_shard.json` — the committed numbers
//! say what host shape produced them, so a 1-core CI box diffing against
//! an 8-core archive reads the `detected_cores` stamp, not the ratio.

use std::hint::black_box;

use kooza_bench::harness::Harness;
use kooza_gfs::{default_shards, Cluster, ClusterConfig, WorkloadMix};

/// The benchmark cluster: wide enough that `auto` sharding engages
/// (64 servers → 8 groups of 8 at replication 3).
fn bench_config() -> ClusterConfig {
    let mut config = ClusterConfig::cluster(64);
    config.workload = WorkloadMix {
        mean_interarrival_secs: 0.0005,
        n_chunks: 20_000,
        ..WorkloadMix::mixed()
    };
    config
}

fn main() {
    let mut h = Harness::from_args();
    let config = bench_config();
    let n_requests: u64 = if h.is_full() { 1_000_000 } else { 5_000 };
    let shards = default_shards(&config) as u64;
    h.set_shards(shards);

    h.bench_function("cluster_1m_single", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(&config).unwrap();
            black_box(cluster.run(n_requests, 42).stats.completed)
        })
    });
    h.bench_function("cluster_1m_shards", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(&config).unwrap();
            black_box(
                cluster
                    .run_sharded(n_requests, 42, shards as usize)
                    .stats
                    .completed,
            )
        })
    });
    h.finish();
}
