//! Closed-form queueing results: M/M/1, M/M/c (Erlang-C) and M/G/1
//! (Pollaczek–Khinchine).
//!
//! These are the ground truth the simulated networks in [`crate::network`]
//! are validated against, and the analytic core of Liu et al.'s multi-tier
//! model in [`crate::tier`].

use crate::{QueueError, Result};

/// Steady-state metrics of a queueing station. Times are in the same unit
/// as the input rates' inverse (seconds when rates are per-second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueMetrics {
    /// Server utilization ρ in `[0, 1)`.
    pub utilization: f64,
    /// Mean number of jobs in the system (queue + service), `L`.
    pub mean_jobs: f64,
    /// Mean waiting time in queue (excluding service), `Wq`.
    pub mean_wait: f64,
    /// Mean response time (waiting + service), `W`.
    pub mean_response: f64,
    /// Probability an arriving job waits (Erlang-C for M/M/c; ρ for M/M/1).
    pub p_wait: f64,
}

fn check_positive(name: &'static str, v: f64) -> Result<()> {
    if v.is_finite() && v > 0.0 {
        Ok(())
    } else {
        Err(QueueError::InvalidParameter { name, value: v })
    }
}

/// M/M/1 steady state.
///
/// # Errors
///
/// Returns [`QueueError::Unstable`] if `lambda >= mu`, or
/// [`QueueError::InvalidParameter`] for non-positive rates.
///
/// ```
/// use kooza_queueing::analytic::mm1;
/// let m = mm1(8.0, 10.0)?;
/// assert!((m.utilization - 0.8).abs() < 1e-12);
/// assert!((m.mean_jobs - 4.0).abs() < 1e-12);     // ρ/(1−ρ)
/// assert!((m.mean_response - 0.5).abs() < 1e-12); // 1/(μ−λ)
/// # Ok::<(), kooza_queueing::QueueError>(())
/// ```
pub fn mm1(lambda: f64, mu: f64) -> Result<QueueMetrics> {
    check_positive("lambda", lambda)?;
    check_positive("mu", mu)?;
    let rho = lambda / mu;
    if rho >= 1.0 {
        return Err(QueueError::Unstable { rho });
    }
    let mean_response = 1.0 / (mu - lambda);
    Ok(QueueMetrics {
        utilization: rho,
        mean_jobs: rho / (1.0 - rho),
        mean_wait: rho / (mu - lambda),
        mean_response,
        p_wait: rho,
    })
}

/// M/M/c steady state via the Erlang-C formula.
///
/// # Errors
///
/// Returns [`QueueError::Unstable`] if `lambda >= c·mu`, or
/// [`QueueError::InvalidParameter`] for non-positive inputs.
pub fn mmc(lambda: f64, mu: f64, c: usize) -> Result<QueueMetrics> {
    check_positive("lambda", lambda)?;
    check_positive("mu", mu)?;
    if c == 0 {
        return Err(QueueError::InvalidParameter { name: "c", value: 0.0 });
    }
    let a = lambda / mu; // offered load in Erlangs
    let rho = a / c as f64;
    if rho >= 1.0 {
        return Err(QueueError::Unstable { rho });
    }
    // Erlang C: compute in log-space-free iterative form.
    let mut sum = 0.0;
    let mut term = 1.0; // a^k / k!
    for k in 0..c {
        if k > 0 {
            term *= a / k as f64;
        }
        sum += term;
    }
    let term_c = term * a / c as f64; // a^c / c!
    let erlang_c = term_c / (1.0 - rho) / (sum + term_c / (1.0 - rho));
    let mean_wait = erlang_c / (c as f64 * mu - lambda);
    let mean_response = mean_wait + 1.0 / mu;
    Ok(QueueMetrics {
        utilization: rho,
        mean_jobs: lambda * mean_response,
        mean_wait,
        mean_response,
        p_wait: erlang_c,
    })
}

/// M/G/1 steady state via Pollaczek–Khinchine.
///
/// `service_mean` and `service_scv` (squared coefficient of variation
/// `σ²/mean²`) describe the general service distribution.
///
/// # Errors
///
/// Returns [`QueueError::Unstable`] if `lambda * service_mean >= 1`, or
/// [`QueueError::InvalidParameter`] for invalid inputs.
pub fn mg1(lambda: f64, service_mean: f64, service_scv: f64) -> Result<QueueMetrics> {
    check_positive("lambda", lambda)?;
    check_positive("service_mean", service_mean)?;
    if !(service_scv.is_finite() && service_scv >= 0.0) {
        return Err(QueueError::InvalidParameter { name: "service_scv", value: service_scv });
    }
    let rho = lambda * service_mean;
    if rho >= 1.0 {
        return Err(QueueError::Unstable { rho });
    }
    // Wq = ρ (1 + C²) E[S] / (2 (1 − ρ))
    let mean_wait = rho * (1.0 + service_scv) * service_mean / (2.0 * (1.0 - rho));
    let mean_response = mean_wait + service_mean;
    Ok(QueueMetrics {
        utilization: rho,
        mean_jobs: lambda * mean_response,
        mean_wait,
        mean_response,
        p_wait: rho,
    })
}

/// Steady state of the finite-capacity M/M/c/K queue (at most `k` jobs in
/// the system, arrivals beyond that are lost) — the analytic companion to
/// admission control: rather than throttling, the buffer bounds latency at
/// the price of a loss probability.
///
/// Returns `(metrics, p_loss)`, where the metrics describe *admitted*
/// jobs. Unlike the infinite-buffer queues, M/M/c/K is stable at any load.
///
/// # Errors
///
/// Returns [`QueueError::InvalidParameter`] for non-positive rates,
/// `c == 0`, or `k < c`.
pub fn mmck(lambda: f64, mu: f64, c: usize, k: usize) -> Result<(QueueMetrics, f64)> {
    check_positive("lambda", lambda)?;
    check_positive("mu", mu)?;
    if c == 0 {
        return Err(QueueError::InvalidParameter { name: "c", value: 0.0 });
    }
    if k < c {
        return Err(QueueError::InvalidParameter { name: "k", value: k as f64 });
    }
    let a = lambda / mu;
    // State probabilities p_n ∝ a^n/n! for n ≤ c, then geometric in ρ.
    let rho = a / c as f64;
    let mut weights = Vec::with_capacity(k + 1);
    let mut w = 1.0;
    weights.push(w);
    for n in 1..=k {
        w *= if n <= c { a / n as f64 } else { rho };
        weights.push(w);
    }
    let total: f64 = weights.iter().sum();
    let p: Vec<f64> = weights.into_iter().map(|x| x / total).collect();
    let p_loss = p[k];
    let mean_jobs: f64 = p.iter().enumerate().map(|(n, &pn)| n as f64 * pn).sum();
    let admitted_rate = lambda * (1.0 - p_loss);
    // Little's law on admitted traffic.
    let mean_response = if admitted_rate > 0.0 { mean_jobs / admitted_rate } else { 0.0 };
    let mean_wait = (mean_response - 1.0 / mu).max(0.0);
    let busy: f64 = p
        .iter()
        .enumerate()
        .map(|(n, &pn)| (n.min(c)) as f64 * pn)
        .sum();
    Ok((
        QueueMetrics {
            utilization: busy / c as f64,
            mean_jobs,
            mean_wait,
            mean_response,
            p_wait: 1.0 - p.iter().take(c).sum::<f64>(),
        },
        p_loss,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_textbook_case() {
        let m = mm1(2.0, 5.0).unwrap();
        assert!((m.utilization - 0.4).abs() < 1e-12);
        assert!((m.mean_response - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.mean_wait - (1.0 / 3.0 - 0.2)).abs() < 1e-12);
        // Little's law: L = λW.
        assert!((m.mean_jobs - 2.0 * m.mean_response).abs() < 1e-12);
    }

    #[test]
    fn mm1_unstable_rejected() {
        assert!(matches!(mm1(5.0, 5.0), Err(QueueError::Unstable { .. })));
        assert!(matches!(mm1(6.0, 5.0), Err(QueueError::Unstable { .. })));
        assert!(mm1(0.0, 5.0).is_err());
    }

    #[test]
    fn mmc_with_one_server_equals_mm1() {
        let a = mm1(3.0, 4.0).unwrap();
        let b = mmc(3.0, 4.0, 1).unwrap();
        assert!((a.mean_wait - b.mean_wait).abs() < 1e-12);
        assert!((a.mean_response - b.mean_response).abs() < 1e-12);
        assert!((a.p_wait - b.p_wait).abs() < 1e-12);
    }

    #[test]
    fn mmc_known_erlang_c_value() {
        // λ=15, μ=1, c=20 → Erlang-C = 0.16042938... (independently computed
        // from the closed form with exact factorials).
        let m = mmc(15.0, 1.0, 20).unwrap();
        assert!((m.p_wait - 0.160_429_387).abs() < 1e-8, "ErlangC {}", m.p_wait);
    }

    #[test]
    fn mmc_more_servers_less_waiting() {
        let w2 = mmc(10.0, 6.0, 2).unwrap().mean_wait;
        let w4 = mmc(10.0, 6.0, 4).unwrap().mean_wait;
        let w8 = mmc(10.0, 6.0, 8).unwrap().mean_wait;
        assert!(w2 > w4 && w4 > w8);
    }

    #[test]
    fn mmc_unstable_rejected() {
        assert!(mmc(10.0, 1.0, 10).is_err());
        assert!(mmc(10.0, 1.0, 0).is_err());
    }

    #[test]
    fn mg1_with_exponential_service_equals_mm1() {
        // Exponential service: SCV = 1.
        let mu = 4.0f64;
        let a = mm1(3.0, mu).unwrap();
        let b = mg1(3.0, 1.0 / mu, 1.0).unwrap();
        assert!((a.mean_wait - b.mean_wait).abs() < 1e-12);
        assert!((a.mean_response - b.mean_response).abs() < 1e-12);
    }

    #[test]
    fn mg1_deterministic_halves_waiting() {
        // M/D/1 waits exactly half of M/M/1.
        let exp = mg1(3.0, 0.2, 1.0).unwrap();
        let det = mg1(3.0, 0.2, 0.0).unwrap();
        assert!((det.mean_wait - exp.mean_wait / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mg1_heavy_tail_service_hurts() {
        let light = mg1(3.0, 0.2, 1.0).unwrap();
        let heavy = mg1(3.0, 0.2, 20.0).unwrap();
        assert!(heavy.mean_wait > 5.0 * light.mean_wait);
    }

    #[test]
    fn mg1_validation() {
        assert!(mg1(5.0, 0.2, 1.0).is_err()); // rho = 1
        assert!(mg1(1.0, 0.2, -1.0).is_err());
        assert!(mg1(1.0, 0.0, 1.0).is_err());
    }

    #[test]
    fn mmck_large_buffer_converges_to_mmc() {
        // With a huge buffer and stable load, M/M/c/K ≈ M/M/c.
        let (finite, p_loss) = mmck(9.0, 3.0, 4, 500).unwrap();
        let infinite = mmc(9.0, 3.0, 4).unwrap();
        assert!(p_loss < 1e-9, "loss {p_loss}");
        assert!((finite.mean_wait - infinite.mean_wait).abs() < 1e-6);
        assert!((finite.utilization - infinite.utilization).abs() < 1e-6);
    }

    #[test]
    fn mmck_loss_system_erlang_b() {
        // K = c (no waiting room): Erlang-B. For a = 2, c = 2:
        // B = (a²/2) / (1 + a + a²/2) = 2/5.
        let (m, p_loss) = mmck(2.0, 1.0, 2, 2).unwrap();
        assert!((p_loss - 0.4).abs() < 1e-12, "loss {p_loss}");
        assert!(m.mean_wait < 1e-12, "wait {}", m.mean_wait);
        // Response = pure service for a loss system.
        assert!((m.mean_response - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mmck_stable_under_overload() {
        // λ > cμ would blow up M/M/c; the finite buffer sheds instead.
        let (m, p_loss) = mmck(50.0, 10.0, 2, 10).unwrap();
        assert!(p_loss > 0.5, "loss {p_loss}");
        assert!(m.utilization > 0.99);
        assert!(m.mean_jobs <= 10.0);
    }

    #[test]
    fn mmck_loss_decreases_with_buffer() {
        let mut prev = 1.0;
        for k in [2usize, 4, 8, 16, 32] {
            let (_, p_loss) = mmck(8.0, 5.0, 2, k).unwrap();
            assert!(p_loss < prev, "k={k}");
            prev = p_loss;
        }
    }

    #[test]
    fn mmck_validation() {
        assert!(mmck(0.0, 1.0, 1, 1).is_err());
        assert!(mmck(1.0, 0.0, 1, 1).is_err());
        assert!(mmck(1.0, 1.0, 0, 1).is_err());
        assert!(mmck(1.0, 1.0, 3, 2).is_err());
    }

    #[test]
    fn littles_law_holds_across_models() {
        for m in [
            mm1(4.0, 9.0).unwrap(),
            mmc(12.0, 5.0, 4).unwrap(),
            mg1(4.0, 0.1, 2.5).unwrap(),
        ] {
            let lambda = m.mean_jobs / m.mean_response;
            let recomputed = lambda * m.mean_response;
            assert!((recomputed - m.mean_jobs).abs() < 1e-9);
        }
    }
}
