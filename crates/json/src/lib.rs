//! Hermetic in-repo JSON support.
//!
//! The workspace must build and test with the crates-io registry
//! unreachable, so trace persistence cannot lean on `serde_json`. This
//! crate provides the small subset of JSON machinery the workspace needs:
//!
//! * [`Json`] — an order-preserving JSON value type with distinct
//!   `U64`/`I64`/`F64` numeric variants, so 64-bit ids and timestamps
//!   survive round-trips without precision loss.
//! * [`to_string`] — a compact serializer that is byte-compatible with the
//!   output `serde_json` produced for this workspace's traces (field order
//!   preserved, shortest round-trip floats with a trailing `.0` for
//!   integral values, `\u00xx` escapes for control characters).
//! * [`parse`] — a recursive-descent parser reporting 1-based line/column
//!   error positions, rejecting duplicate object keys and non-finite
//!   number literals.
//! * [`ToJson`]/[`FromJson`] — conversion traits with impls for the
//!   primitives, `Option`, `Vec`, tuples and `String`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod parse;
mod ser;
mod traits;
mod value;

pub use parse::parse;
pub use ser::to_string;
pub use traits::{FromJson, ToJson};
pub use value::Json;

/// Error from parsing or converting JSON.
///
/// Parse errors carry the 1-based line and column of the offending byte;
/// conversion ([`FromJson`]) errors carry position `0:0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the error, or 0 for non-parse errors.
    pub line: usize,
    /// 1-based column (in bytes) of the error, or 0 for non-parse errors.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl JsonError {
    /// A parse error at a known position.
    pub fn at(line: usize, col: usize, message: impl Into<String>) -> Self {
        JsonError { line, col, message: message.into() }
    }

    /// A conversion error with no source position.
    pub fn conversion(message: impl Into<String>) -> Self {
        JsonError { line: 0, col: 0, message: message.into() }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {} column {}", self.message, self.line, self.col)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for JsonError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, JsonError>;
