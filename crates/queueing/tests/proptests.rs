//! Property-based tests for the queueing substrate, on the deterministic
//! in-repo `kooza-check` harness.

use kooza_check::gen::{f64_range, u32_range, u64_range, usize_range, vec_of, zip2, zip3};
use kooza_check::{assume, checker, ensure};

use kooza_queueing::analytic::{mg1, mm1, mmc};
use kooza_queueing::arrival::{arrival_times, PoissonArrivals};
use kooza_queueing::mva::{closed_mva, kingman_gg1};
use kooza_queueing::network::{simulate, NetworkConfig, NodeConfig};
use kooza_sim::rng::Rng64;
use kooza_stats::dist::Exponential;

/// Analytic response times are monotone in load.
#[test]
fn response_monotone_in_load() {
    checker("response_monotone_in_load").run(
        zip2(f64_range(5.0, 50.0), usize_range(1, 6)),
        |&(mu, c)| {
            let mut prev = 0.0;
            for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
                let lambda = mu * c as f64 * frac;
                let m = mmc(lambda, mu, c).unwrap();
                ensure!(m.mean_response >= prev - 1e-12, "response fell at load {frac}");
                prev = m.mean_response;
            }
            Ok(())
        },
    );
}

/// M/G/1 interpolates monotonically in service variability.
#[test]
fn mg1_monotone_in_scv() {
    checker("mg1_monotone_in_scv").run(
        zip2(f64_range(0.5, 8.0), f64_range(0.01, 0.1)),
        |&(lambda, mean)| {
            assume!(lambda * mean < 0.95);
            let mut prev = 0.0;
            for scv in [0.0, 0.5, 1.0, 2.0, 5.0] {
                let m = mg1(lambda, mean, scv).unwrap();
                ensure!(m.mean_wait >= prev - 1e-12, "wait fell at scv {scv}");
                prev = m.mean_wait;
            }
            Ok(())
        },
    );
}

/// Kingman with exponential marks equals exact M/M/1 waiting.
#[test]
fn kingman_mm1_identity() {
    checker("kingman_mm1_identity").run(
        zip2(f64_range(0.5, 9.0), f64_range(10.0, 30.0)),
        |&(lambda, mu)| {
            let approx = kingman_gg1(lambda, 1.0, 1.0 / mu, 1.0).unwrap();
            let exact = mm1(lambda, mu).unwrap().mean_wait;
            ensure!((approx - exact).abs() < 1e-10, "kingman {approx} vs exact {exact}");
            Ok(())
        },
    );
}

/// MVA throughput obeys both asymptotic bounds:
/// X ≤ 1/D_max and X ≤ N / (Z + ΣD).
#[test]
fn mva_bounds() {
    checker("mva_bounds").run(
        zip3(
            usize_range(1, 100),
            f64_range(0.0, 5.0),
            vec_of(f64_range(0.001, 0.5), 1, 4),
        ),
        |(n, think, demands): &(usize, f64, Vec<f64>)| {
            let s = closed_mva(*n, *think, demands).unwrap();
            let d_max = demands.iter().cloned().fold(0.0f64, f64::max);
            let d_sum: f64 = demands.iter().sum();
            ensure!(s.throughput <= 1.0 / d_max + 1e-9, "X above 1/D_max");
            ensure!(
                s.throughput <= *n as f64 / (think + d_sum) + 1e-9,
                "X above N/(Z+ΣD)"
            );
            // Utilization law: U_i = X · D_i.
            for (u, d) in s.utilizations.iter().zip(demands) {
                ensure!((u - s.throughput * d).abs() < 1e-9, "utilization law broken");
                ensure!(*u <= 1.0 + 1e-9, "utilization {u} above 1");
            }
            Ok(())
        },
    );
}

/// Simulated M/M/1 agrees with the closed form across random loads
/// (coarse tolerance; this is a statistical check).
#[test]
fn simulation_matches_analytic() {
    checker("simulation_matches_analytic").cases(20).run(
        zip2(u64_range(0, 20), u32_range(20, 75)),
        |&(seed, rho_pct)| {
            let mu = 20.0;
            let lambda = mu * f64::from(rho_pct) / 100.0;
            let config = NetworkConfig::tandem(vec![NodeConfig {
                name: "q".into(),
                servers: 1,
                service: Box::new(Exponential::new(mu).unwrap()),
            }]);
            let mut arrivals = PoissonArrivals::new(lambda).unwrap();
            let mut rng = Rng64::new(seed);
            let res = simulate(&config, &mut arrivals, 60_000, &mut rng).unwrap();
            let analytic = mm1(lambda, mu).unwrap();
            let rel = (res.mean_response_secs() - analytic.mean_response).abs()
                / analytic.mean_response;
            ensure!(rel < 0.15, "rho {rho_pct}%: rel err {rel}");
            Ok(())
        },
    );
}

/// Arrival processes produce non-negative, monotone absolute times.
#[test]
fn arrivals_monotone() {
    checker("arrivals_monotone").run(
        zip2(f64_range(1.0, 500.0), u64_range(0, 100)),
        |&(rate, seed)| {
            let mut p = PoissonArrivals::new(rate).unwrap();
            let mut rng = Rng64::new(seed);
            let times = arrival_times(&mut p, 500, &mut rng);
            for w in times.windows(2) {
                ensure!(w[1] >= w[0], "arrival times went backwards");
            }
            ensure!(times[0] >= 0.0, "negative first arrival");
            Ok(())
        },
    );
}
