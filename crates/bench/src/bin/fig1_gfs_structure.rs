//! FIG1 — GFS structure diagram for a user request.
//!
//! The paper's Figure 1 shows a request's path through a chunkserver:
//! network → CPU (+memory) → disk → CPU → network. This binary mines the
//! observed span trees from a simulated trace and prints the per-class
//! structure with per-phase timing — the measured version of the figure.

use std::collections::BTreeMap;

use kooza_bench::{banner, read_64k_cluster, run, section, write_4m_cluster};

fn print_structure(label: &str, outcome: &kooza_gfs::ClusterOutcome) {
    section(label);
    let trees = outcome.trace.span_trees();
    // Group by phase sequence.
    let mut by_seq: BTreeMap<Vec<String>, Vec<u64>> = BTreeMap::new();
    let mut phase_time: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for tree in &trees {
        let seq: Vec<String> = tree.phase_sequence().iter().map(|s| s.to_string()).collect();
        by_seq.entry(seq.clone()).or_default().push(tree.total_latency_nanos());
        for name in seq {
            let t = tree.time_in_phase_nanos(&name);
            let e = phase_time.entry(name).or_insert((0, 0));
            e.0 += t;
            e.1 += 1;
        }
    }
    let total = trees.len();
    let mut seqs: Vec<(Vec<String>, Vec<u64>)> = by_seq.into_iter().collect();
    seqs.sort_by_key(|(_, v)| std::cmp::Reverse(v.len()));
    for (seq, latencies) in &seqs {
        let mean_ms =
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1e6;
        println!(
            "[{:>5.1}%] {}  (mean latency {:.3} ms, n={})",
            latencies.len() as f64 / total as f64 * 100.0,
            seq.join(" → "),
            mean_ms,
            latencies.len()
        );
    }
    println!("\nper-phase mean time:");
    for (name, (sum, n)) in &phase_time {
        println!("  {:<14} {:>10.3} ms", name, *sum as f64 / *n as f64 / 1e6);
    }
}

fn main() {
    banner("FIG1", "GFS structure diagram for a user request (measured)");
    let (_, mut cluster) = read_64k_cluster();
    let outcome = run(&mut cluster, 1000);
    print_structure("64 KB read requests", &outcome);

    let (_, mut cluster) = write_4m_cluster();
    let outcome = run(&mut cluster, 400);
    print_structure("4 MB write requests", &outcome);

    println!(
        "\npaper's Figure 1: Network → CPU(+Memory) → Disk → CPU → Network;\n\
         the dominant mined sequence above is exactly that pipeline."
    );
}
