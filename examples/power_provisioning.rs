//! Power provisioning (§5): from a workload model to a DC power model.
//!
//! Train KOOZA once, then estimate energy per server configuration and per
//! workload intensity — the "performance and power model for the
//! datacenter" §5 argues per-subsystem models enable. The in-depth
//! baseline, trained on the same trace, cannot attribute a single joule to
//! a subsystem (its phases are opaque durations) — the comparison at the
//! bottom mechanizes §3.2's completeness argument.
//!
//! Run with: `cargo run --example power_provisioning`

use kooza::power::{estimate_energy, PowerParams};
use kooza::{InDepthModel, Kooza, ReplayConfig, WorkloadModel};
use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};
use kooza_sim::rng::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ClusterConfig::small();
    config.workload = WorkloadMix::mixed();
    let outcome = Cluster::new(&config)?.run(2000, 13);
    let model = Kooza::fit(&outcome.trace)?;
    let power = PowerParams::default();

    // Energy vs workload intensity (scale arrivals by compressing gaps).
    println!("energy vs offered load (same per-request work):");
    println!(
        "{:>12} {:>12} {:>14} {:>14} {:>14}",
        "load scale", "mean W", "J/request", "dynamic %", "disk J share"
    );
    let mut rng = Rng64::new(21);
    let base_requests = model.generate(2000, &mut rng);
    for scale in [0.5, 1.0, 2.0, 4.0] {
        let mut reqs = base_requests.clone();
        for r in &mut reqs {
            r.interarrival_secs /= scale;
        }
        let e = estimate_energy(&reqs, ReplayConfig::from(&config), &power);
        println!(
            "{:>11}x {:>12.1} {:>14.3} {:>13.1}% {:>13.1}%",
            scale,
            e.mean_power_w(),
            e.joules_per_request(reqs.len()),
            e.dynamic_fraction() * 100.0,
            e.disk_joules / e.total_joules * 100.0
        );
    }

    // Energy vs hardware configuration (same workload).
    println!("\nenergy vs hardware (SSD cuts disk-active time):");
    let mut ssd = ReplayConfig::from(&config);
    ssd.disk.seek_base_secs = 0.00005;
    ssd.disk.seek_full_secs = 0.0001;
    ssd.disk.transfer_bytes_per_sec = 500e6;
    for (name, rc) in [("HDD", ReplayConfig::from(&config)), ("SSD", ssd)] {
        let e = estimate_energy(&base_requests, rc, &power);
        println!(
            "  {name}: mean {:.1} W, disk {:.1} J of {:.1} J total",
            e.mean_power_w(),
            e.disk_joules,
            e.total_joules
        );
    }

    // The in-depth model cannot play this game.
    let indepth = InDepthModel::fit(&outcome.trace)?;
    let ireqs = indepth.generate(2000, &mut Rng64::new(22));
    let ie = estimate_energy(&ireqs, ReplayConfig::from(&config), &power);
    println!(
        "\nin-depth baseline on the same trace: cpu {:.1} J, disk {:.1} J, \
         unattributed busy time {:.1} s",
        ie.cpu_joules, ie.disk_joules, ie.unattributed_secs
    );
    println!(
        "(all its activity is opaque — no subsystem attribution, hence no\n\
         power model: §3.2's completeness gap, mechanized)"
    );
    Ok(())
}
