//! Reproducible pseudo-random number generation.
//!
//! The workspace deliberately avoids the `rand` crate for core randomness so
//! that experiment outputs are bit-stable across toolchain and dependency
//! upgrades. [`Rng64`] is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 as its authors recommend; both are public-domain algorithms.
//!
//! Distribution samplers (exponential, normal, Pareto, ...) live in
//! `kooza-stats`; this module only provides the uniform source.

/// A deterministic 64-bit PRNG (xoshiro256++).
///
/// ```
/// use kooza_sim::rng::Rng64;
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed (including 0) is valid; the state is expanded through
    /// SplitMix64 so correlated seeds do not produce correlated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Derives an independent child generator.
    ///
    /// Useful for giving each simulated component its own stream so that
    /// adding draws in one component does not perturb another.
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }

    /// Derives the generator for stream `stream` of seed `seed` — the
    /// parallel-execution discipline: every task derives its randomness
    /// from `(seed, task index)` through SplitMix64, so seed `s` + task
    /// `i` yields the same stream at any thread count and in any
    /// completion order.
    ///
    /// ```
    /// use kooza_sim::rng::Rng64;
    /// let mut a = Rng64::for_stream(7, 3);
    /// let mut b = Rng64::for_stream(7, 3);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// assert_ne!(Rng64::for_stream(7, 4).next_u64(), b.next_u64());
    /// ```
    pub fn for_stream(seed: u64, stream: u64) -> Rng64 {
        // Decorrelate the seed, mix the stream id in, and decorrelate
        // again: adjacent (seed, stream) pairs land far apart in the
        // SplitMix64 sequence, and the Rng64 constructor expands the
        // result through SplitMix64 a further four times.
        let mut sm = seed;
        let mixed = splitmix64(&mut sm) ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut sm2 = mixed;
        Rng64::new(splitmix64(&mut sm2))
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]`; never returns exactly 0, so it is safe to
    /// pass to `ln()` when sampling exponentials.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_bounded(hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.next_bounded(items.len() as u64) as usize]
    }

    /// Samples an index according to a slice of non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if the weights are empty, contain a negative value, or sum to 0.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "cannot choose from empty weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weights must be finite and non-negative");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut u = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1 // floating-point slack: attribute to the last bucket
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_bounded(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// A precomputed weighted-sampling table for repeated draws from the same
/// weights: [`Rng64::choose_weighted`]'s per-call validation, summation and
/// linear CDF scan are paid once at construction, and every draw is one
/// uniform plus an O(log n) binary search.
///
/// The table is **bit-equivalent** to the linear scan: for any generator
/// state, `WeightedIndex::new(w).sample(rng)` returns exactly the index
/// `rng.choose_weighted(w)` would have, consuming the same single uniform.
/// The equivalence is by construction, not by accident: the scan's chosen
/// index is a monotone step function of the uniform `u`, and the table
/// stores the exact `f64` step boundaries — computed by inverting the
/// scan's own floating-point subtraction chain one subtraction at a time —
/// so the binary search lands in the same step even at values where a
/// naive prefix-sum comparison would round the other way.
///
/// ```
/// use kooza_sim::rng::{Rng64, WeightedIndex};
/// let weights = [0.2, 0.5, 0.3];
/// let table = WeightedIndex::new(&weights);
/// let (mut a, mut b) = (Rng64::new(7), Rng64::new(7));
/// for _ in 0..100 {
///     assert_eq!(table.sample(&mut a), b.choose_weighted(&weights));
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedIndex {
    /// Sum of the weights, folded in slice order (the scan's scale factor).
    total: f64,
    /// `thresholds[i]` is the smallest scaled uniform that carries the
    /// linear scan *past* index `i`; the sampled index for `u` is the
    /// number of thresholds `<= u`. Non-decreasing, length `n - 1`.
    thresholds: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the table for a slice of non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics exactly when [`Rng64::choose_weighted`] would: empty weights,
    /// a negative or non-finite weight, or an all-zero sum.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "cannot choose from empty weights");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0 && w.is_finite(), "weights must be finite and non-negative");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let n = weights.len();
        let mut thresholds = Vec::with_capacity(n.saturating_sub(1));
        for i in 0..n - 1 {
            // The scan passes index i iff its running remainder survives
            // every subtraction up to and including w[i]. Invert that chain
            // right-to-left: the remainder entering step i must be >= w[i],
            // and the remainder entering step k must map, under the scan's
            // own `fl(x - w[k])`, to at least the step-(k+1) requirement.
            let mut t = weights[i];
            for k in (0..i).rev() {
                t = smallest_surviving(weights[k], t);
            }
            thresholds.push(t);
        }
        WeightedIndex { total, thresholds }
    }

    /// Number of weights the table was built from.
    pub fn len(&self) -> usize {
        self.thresholds.len() + 1
    }

    /// Whether the table is empty (never: construction requires weights).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The weight sum the scan scales its uniform by.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Draws an index, consuming one uniform — bit-equivalent to
    /// `rng.choose_weighted(weights)` on the same generator state.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        self.index_for(rng.next_f64() * self.total)
    }

    /// The index the linear scan would pick for scaled uniform `u`.
    fn index_for(&self, u: f64) -> usize {
        self.thresholds.partition_point(|&t| t <= u)
    }
}

/// Smallest `x >= 0` with `x - w >= t` under IEEE-754 round-to-nearest
/// (`w`, `t` finite and non-negative). Starts from the rounded candidate
/// `w + t` and walks the few ULPs to the exact boundary.
fn smallest_surviving(w: f64, t: f64) -> f64 {
    let mut x = w + t;
    while x - w < t {
        x = x.next_up();
    }
    loop {
        let down = x.next_down();
        if down >= 0.0 && down - w >= t {
            x = down;
        } else {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(8);
        assert_ne!(Rng64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn known_vector_stability() {
        // Regression lock: if these change, every experiment output changes.
        let mut r = Rng64::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng64::new(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_eq!(first.len(), 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng64::new(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bounded_is_in_range_and_roughly_uniform() {
        let mut r = Rng64::new(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = r.next_bounded(10);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng64::new(4);
        for _ in 0..1_000 {
            let v = r.next_range(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng64::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut r = Rng64::new(6);
        let mut hits = [0u32; 3];
        for _ in 0..30_000 {
            hits[r.choose_weighted(&[0.0, 1.0, 3.0])] += 1;
        }
        assert_eq!(hits[0], 0);
        let ratio = hits[2] as f64 / hits[1] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn for_stream_is_stable_and_decorrelated() {
        // Same (seed, stream) → same sequence; this is what makes
        // parallel fan-out reproducible at any thread count.
        let a: Vec<u64> = {
            let mut r = Rng64::for_stream(42, 5);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::for_stream(42, 5);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        // Adjacent streams and adjacent seeds differ from the start.
        assert_ne!(Rng64::for_stream(42, 6).next_u64(), a[0]);
        assert_ne!(Rng64::for_stream(43, 5).next_u64(), a[0]);
        // Streams are pairwise distinct over a modest fan-out.
        let firsts: std::collections::HashSet<u64> =
            (0..1000).map(|i| Rng64::for_stream(42, i).next_u64()).collect();
        assert_eq!(firsts.len(), 1000);
    }

    #[test]
    fn fork_streams_diverge() {
        let mut parent = Rng64::new(9);
        let mut a = parent.fork();
        let mut b = parent.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(10);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        Rng64::new(0).next_bounded(0);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn choose_empty_panics() {
        let empty: [u8; 0] = [];
        Rng64::new(0).choose(&empty);
    }

    /// Replica of the `choose_weighted` linear scan on an externally
    /// supplied scaled uniform, for boundary-exact comparison.
    fn linear_scan(weights: &[f64], mut u: f64) -> usize {
        for (i, &w) in weights.iter().enumerate() {
            if u < w {
                return i;
            }
            u -= w;
        }
        weights.len() - 1
    }

    #[test]
    fn weighted_index_matches_choose_weighted_streams() {
        let cases: Vec<Vec<f64>> = vec![
            vec![1.0],
            vec![0.0, 1.0, 3.0],
            vec![0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1],
            vec![1e-12, 0.5, 1e-12, 0.5],
            vec![3.0, 0.0, 0.0, 2.0],
            (1..=33).map(|i| 1.0 / i as f64).collect(),
        ];
        for (case, weights) in cases.iter().enumerate() {
            let table = WeightedIndex::new(weights);
            assert_eq!(table.len(), weights.len());
            let mut a = Rng64::new(900 + case as u64);
            let mut b = a.clone();
            for _ in 0..5_000 {
                assert_eq!(
                    table.sample(&mut a),
                    b.choose_weighted(weights),
                    "case {case} diverged"
                );
            }
            // Same number of uniforms consumed: the streams stay in step.
            assert_eq!(a, b, "case {case} consumed differently");
        }
    }

    #[test]
    fn weighted_index_exact_at_step_boundaries() {
        // The scan's index is a step function of u; the table stores the
        // exact boundaries. Probe each boundary and its ULP neighbours —
        // the values where a naive prefix-sum comparison can disagree.
        let cases: Vec<Vec<f64>> = vec![
            vec![0.1, 0.2, 0.3, 0.4],
            vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
            vec![0.0, 0.7, 0.0, 0.3],
            vec![1e-300, 1.0, 1e-300],
            (0..16).map(|i| ((i * 2654435761u64) % 97) as f64 + 0.1).collect(),
        ];
        for weights in &cases {
            let table = WeightedIndex::new(weights);
            let probes: Vec<f64> = table
                .thresholds
                .iter()
                .flat_map(|&t| [t.next_down(), t, t.next_up()])
                .chain([0.0, table.total() * 0.5, table.total().next_down()])
                .filter(|&u| u >= 0.0)
                .collect();
            for u in probes {
                assert_eq!(
                    table.index_for(u),
                    linear_scan(weights, u),
                    "weights {weights:?} diverge at u = {u:e}"
                );
            }
        }
    }

    #[test]
    fn weighted_index_single_state_consumes_one_uniform() {
        let table = WeightedIndex::new(&[2.5]);
        let mut a = Rng64::new(1);
        let mut b = a.clone();
        assert_eq!(table.sample(&mut a), 0);
        b.next_f64();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn weighted_index_rejects_zero_weights() {
        WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty weights")]
    fn weighted_index_rejects_empty() {
        WeightedIndex::new(&[]);
    }
}
