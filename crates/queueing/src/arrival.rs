//! Arrival processes.
//!
//! All times are in seconds. An [`ArrivalProcess`] yields successive
//! inter-arrival gaps; [`arrival_times`] accumulates them into absolute
//! timestamps for trace generation.

use std::collections::BinaryHeap;

use kooza_sim::rng::Rng64;
use kooza_stats::dist::{Distribution, Exponential, Pareto};

use crate::{QueueError, Result};

/// A stream of inter-arrival gaps (seconds).
pub trait ArrivalProcess: std::fmt::Debug {
    /// The next inter-arrival gap, in seconds (non-negative).
    fn next_gap(&mut self, rng: &mut Rng64) -> f64;

    /// Long-run mean arrival rate in events/second, if known analytically.
    fn mean_rate(&self) -> Option<f64> {
        None
    }
}

/// Accumulates `n` gaps from a process into absolute arrival times.
pub fn arrival_times(process: &mut dyn ArrivalProcess, n: usize, rng: &mut Rng64) -> Vec<f64> {
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += process.next_gap(rng);
            t
        })
        .collect()
}

/// Poisson arrivals: iid exponential gaps — the textbook (and, per the
/// paper's surveyed evidence, usually *wrong*) DC traffic model.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    gap: Exponential,
    rate: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson process with `rate` events/second.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::InvalidParameter`] unless `rate > 0`.
    pub fn new(rate: f64) -> Result<Self> {
        let gap = Exponential::new(rate)
            .map_err(|_| QueueError::InvalidParameter { name: "rate", value: rate })?;
        Ok(PoissonArrivals { gap, rate })
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_gap(&mut self, rng: &mut Rng64) -> f64 {
        self.gap.sample(rng)
    }

    fn mean_rate(&self) -> Option<f64> {
        Some(self.rate)
    }
}

/// Renewal arrivals: iid gaps from an arbitrary distribution (lognormal,
/// Weibull, Pareto, empirical, ...).
#[derive(Debug)]
pub struct RenewalArrivals {
    gap: Box<dyn Distribution>,
}

impl RenewalArrivals {
    /// Wraps any positive-support distribution as an arrival process.
    pub fn new(gap: Box<dyn Distribution>) -> Self {
        RenewalArrivals { gap }
    }
}

impl ArrivalProcess for RenewalArrivals {
    fn next_gap(&mut self, rng: &mut Rng64) -> f64 {
        self.gap.sample(rng).max(0.0)
    }

    fn mean_rate(&self) -> Option<f64> {
        let m = self.gap.mean();
        (m.is_finite() && m > 0.0).then(|| 1.0 / m)
    }
}

/// A Markov-modulated Poisson process: the source moves between phases
/// with exponential holding times; while in phase `i` arrivals are Poisson
/// at `rates[i]`. Captures the non-stationary, bursty request streams the
/// OLTP characterizations (Sengupta & Ganesan) report.
#[derive(Debug, Clone)]
pub struct MmppArrivals {
    /// Arrival rate per phase.
    rates: Vec<f64>,
    /// Phase-switch rate per phase (1 / mean holding time).
    switch_rates: Vec<f64>,
    /// Phase-transition probabilities (row-stochastic, zero diagonal
    /// preferred but not required).
    routing: Vec<Vec<f64>>,
    phase: usize,
}

impl MmppArrivals {
    /// Creates an MMPP.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError`] variants for empty/mismatched inputs or
    /// non-positive rates.
    pub fn new(rates: Vec<f64>, switch_rates: Vec<f64>, routing: Vec<Vec<f64>>) -> Result<Self> {
        let n = rates.len();
        if n == 0 {
            return Err(QueueError::InvalidTopology("MMPP needs at least one phase".into()));
        }
        if switch_rates.len() != n || routing.len() != n {
            return Err(QueueError::InvalidTopology("MMPP dimension mismatch".into()));
        }
        for &r in &rates {
            if !(r.is_finite() && r >= 0.0) {
                return Err(QueueError::InvalidParameter { name: "rate", value: r });
            }
        }
        for &s in &switch_rates {
            if !(s.is_finite() && s > 0.0) {
                return Err(QueueError::InvalidParameter { name: "switch_rate", value: s });
            }
        }
        for row in &routing {
            if row.len() != n {
                return Err(QueueError::InvalidTopology("MMPP routing row mismatch".into()));
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(QueueError::InvalidTopology(format!(
                    "MMPP routing row sums to {sum}"
                )));
            }
        }
        Ok(MmppArrivals {
            rates,
            switch_rates,
            routing,
            phase: 0,
        })
    }

    /// A convenient two-phase bursty source: a quiet phase and a burst
    /// phase, symmetric switching.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation.
    pub fn bursty(quiet_rate: f64, burst_rate: f64, switch_rate: f64) -> Result<Self> {
        MmppArrivals::new(
            vec![quiet_rate, burst_rate],
            vec![switch_rate, switch_rate],
            vec![vec![0.0, 1.0], vec![1.0, 0.0]],
        )
    }

    /// Current phase index.
    pub fn phase(&self) -> usize {
        self.phase
    }
}

impl ArrivalProcess for MmppArrivals {
    fn next_gap(&mut self, rng: &mut Rng64) -> f64 {
        let mut elapsed = 0.0;
        // Competing exponentials: next arrival vs next phase switch.
        loop {
            let lambda = self.rates[self.phase];
            let q = self.switch_rates[self.phase];
            let t_switch = -rng.next_f64_open().ln() / q;
            if lambda > 0.0 {
                let t_arrival = -rng.next_f64_open().ln() / lambda;
                if t_arrival <= t_switch {
                    return elapsed + t_arrival;
                }
            }
            elapsed += t_switch;
            self.phase = rng.choose_weighted(&self.routing[self.phase]);
        }
    }

    fn mean_rate(&self) -> Option<f64> {
        // Time-stationary phase probabilities ∝ routing-stationary / switch
        // rate. For the common symmetric two-phase case this reduces to the
        // simple average; solve generally by power iteration on the
        // embedded chain.
        let n = self.rates.len();
        let mut pi = vec![1.0 / n as f64; n];
        for _ in 0..10_000 {
            let mut next = vec![0.0; n];
            for (i, p) in pi.iter().enumerate() {
                for j in 0..n {
                    next[j] += p * self.routing[i][j];
                }
            }
            let diff: f64 = next.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
            pi = next;
            if diff < 1e-13 {
                break;
            }
        }
        // Convert embedded-chain probabilities to time fractions.
        let weights: Vec<f64> = pi
            .iter()
            .zip(&self.switch_rates)
            .map(|(p, q)| p / q)
            .collect();
        let total: f64 = weights.iter().sum();
        Some(
            weights
                .iter()
                .zip(&self.rates)
                .map(|(w, r)| w / total * r)
                .sum(),
        )
    }
}

/// Self-similar arrivals by superposition of Pareto on/off sources
/// (the Willinger construction). While "on", a source emits at a constant
/// rate; on/off period lengths are Pareto with `1 < α < 2`, which yields
/// long-range dependence with Hurst `H = (3 − α) / 2`.
#[derive(Debug)]
pub struct SelfSimilarArrivals {
    sources: Vec<OnOffSource>,
    /// Min-heap of (next event time, source index).
    pending: BinaryHeap<std::cmp::Reverse<(OrderedF64, usize)>>,
    now: f64,
    emit_gap: f64,
    rate: f64,
    initialized: bool,
}

/// Total-order wrapper for event times (no NaNs by construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("event times are finite")
    }
}

#[derive(Debug, Clone)]
struct OnOffSource {
    on_period: Pareto,
    off_period: Pareto,
    /// Remaining on-time for the current burst, if on.
    on_until: f64,
}

impl SelfSimilarArrivals {
    /// Creates `n_sources` on/off sources with Pareto(α) periods scaled so
    /// the aggregate mean rate is `rate` events/second.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::InvalidParameter`] for a non-positive rate,
    /// `alpha` outside `(1, 2)` or zero sources.
    pub fn new(rate: f64, alpha: f64, n_sources: usize) -> Result<Self> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(QueueError::InvalidParameter { name: "rate", value: rate });
        }
        if !(alpha > 1.0 && alpha < 2.0) {
            return Err(QueueError::InvalidParameter { name: "alpha", value: alpha });
        }
        if n_sources == 0 {
            return Err(QueueError::InvalidParameter { name: "n_sources", value: 0.0 });
        }
        // Each source alternates mean-1s on and mean-1s off periods (Pareto
        // with xm chosen for mean 1), emitting events at a fixed rate while
        // on. Duty cycle 1/2 → per-source emit rate = 2 rate / n.
        let xm = (alpha - 1.0) / alpha; // Pareto mean = α xm / (α−1) = 1
        let on = Pareto::new(xm, alpha).expect("validated above");
        let off = Pareto::new(xm, alpha).expect("validated above");
        let emit_rate_per_source = 2.0 * rate / n_sources as f64;
        Ok(SelfSimilarArrivals {
            sources: (0..n_sources)
                .map(|_| OnOffSource {
                    on_period: on,
                    off_period: off,
                    on_until: 0.0,
                })
                .collect(),
            pending: BinaryHeap::new(),
            now: 0.0,
            emit_gap: 1.0 / emit_rate_per_source,
            rate,
            initialized: false,
        })
    }

    fn schedule_source(&mut self, idx: usize, from: f64, rng: &mut Rng64) {
        // Walk the source's on/off renewal process from `from` to its next
        // emission instant.
        let mut t = from;
        let src = &mut self.sources[idx];
        loop {
            if t < src.on_until {
                // Emitting: next event after one emission gap (jittered
                // ±50% so sources do not phase-lock).
                let gap = self.emit_gap;
                t += gap;
                if t <= src.on_until {
                    self.pending.push(std::cmp::Reverse((OrderedF64(t), idx)));
                    return;
                }
                t = src.on_until;
            }
            // Off period, then a new on period.
            let off = src.off_period.sample(rng);
            let on = src.on_period.sample(rng);
            t += off;
            src.on_until = t + on;
        }
    }
}

impl ArrivalProcess for SelfSimilarArrivals {
    fn next_gap(&mut self, rng: &mut Rng64) -> f64 {
        if !self.initialized {
            self.initialized = true;
            for idx in 0..self.sources.len() {
                // Stagger source starts.
                let start = rng.next_f64() * 2.0;
                self.schedule_source(idx, start, rng);
            }
        }
        let std::cmp::Reverse((OrderedF64(t), idx)) =
            self.pending.pop().expect("at least one source is always scheduled");
        let gap = (t - self.now).max(0.0);
        self.now = t;
        self.schedule_source(idx, t, rng);
        gap
    }

    fn mean_rate(&self) -> Option<f64> {
        Some(self.rate)
    }
}

/// Non-stationary (diurnal) Poisson arrivals with a sinusoidal rate
/// profile `λ(t) = base · (1 + amplitude · sin(2πt / period))`.
///
/// Tang et al.'s MediSyn models "long-term behavior of network activity by
/// capturing the non-stationarity" of request streams; this is the
/// canonical non-stationary source, sampled exactly with Lewis–Shedler
/// thinning.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalArrivals {
    base_rate: f64,
    amplitude: f64,
    period_secs: f64,
    now: f64,
}

impl DiurnalArrivals {
    /// Creates a diurnal source.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::InvalidParameter`] unless `base_rate > 0`,
    /// `0 ≤ amplitude < 1` (the rate must stay positive) and
    /// `period_secs > 0`.
    pub fn new(base_rate: f64, amplitude: f64, period_secs: f64) -> Result<Self> {
        if !(base_rate.is_finite() && base_rate > 0.0) {
            return Err(QueueError::InvalidParameter { name: "base_rate", value: base_rate });
        }
        if !(amplitude.is_finite() && (0.0..1.0).contains(&amplitude)) {
            return Err(QueueError::InvalidParameter { name: "amplitude", value: amplitude });
        }
        if !(period_secs.is_finite() && period_secs > 0.0) {
            return Err(QueueError::InvalidParameter { name: "period_secs", value: period_secs });
        }
        Ok(DiurnalArrivals {
            base_rate,
            amplitude,
            period_secs,
            now: 0.0,
        })
    }

    /// The instantaneous rate at absolute time `t` seconds.
    pub fn rate_at(&self, t: f64) -> f64 {
        self.base_rate
            * (1.0 + self.amplitude * (2.0 * std::f64::consts::PI * t / self.period_secs).sin())
    }
}

impl ArrivalProcess for DiurnalArrivals {
    fn next_gap(&mut self, rng: &mut Rng64) -> f64 {
        // Lewis–Shedler thinning at the peak rate.
        let lambda_max = self.base_rate * (1.0 + self.amplitude);
        let start = self.now;
        loop {
            self.now += -rng.next_f64_open().ln() / lambda_max;
            if rng.next_f64() < self.rate_at(self.now) / lambda_max {
                return self.now - start;
            }
        }
    }

    fn mean_rate(&self) -> Option<f64> {
        // The sinusoid integrates to zero over a period.
        Some(self.base_rate)
    }
}

/// SURGE-style user-equivalent arrivals: `n_users` independent users cycle
/// through think time (Pareto, heavy-tailed per Barford & Crovella) and a
/// burst of object requests with small gaps. Contrast with the
/// infinite-source model that sends constant traffic with no user
/// variability (Joo et al.'s comparison).
#[derive(Debug)]
pub struct UserEquivalentArrivals {
    think: Pareto,
    objects_per_page: f64,
    object_gap: Exponential,
    /// Min-heap of (next request time, user index, remaining objects).
    pending: BinaryHeap<std::cmp::Reverse<(OrderedF64, usize, u32)>>,
    now: f64,
    n_users: usize,
    initialized: bool,
}

impl UserEquivalentArrivals {
    /// Creates a user-equivalent source.
    ///
    /// * `n_users` — concurrent user equivalents.
    /// * `mean_think_secs` — mean think time between pages (Pareto α=1.5).
    /// * `objects_per_page` — mean embedded objects fetched per page.
    /// * `object_gap_secs` — mean gap between object fetches in a page.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::InvalidParameter`] on non-positive parameters.
    pub fn new(
        n_users: usize,
        mean_think_secs: f64,
        objects_per_page: f64,
        object_gap_secs: f64,
    ) -> Result<Self> {
        if n_users == 0 {
            return Err(QueueError::InvalidParameter { name: "n_users", value: 0.0 });
        }
        for (name, v) in [
            ("mean_think_secs", mean_think_secs),
            ("objects_per_page", objects_per_page),
            ("object_gap_secs", object_gap_secs),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(QueueError::InvalidParameter { name, value: v });
            }
        }
        let alpha = 1.5;
        let xm = mean_think_secs * (alpha - 1.0) / alpha;
        Ok(UserEquivalentArrivals {
            think: Pareto::new(xm, alpha).expect("validated above"),
            objects_per_page,
            object_gap: Exponential::with_mean(object_gap_secs).expect("validated above"),
            pending: BinaryHeap::new(),
            now: 0.0,
            n_users,
            initialized: false,
        })
    }

    fn page_objects(&self, rng: &mut Rng64) -> u32 {
        // Geometric-ish object count with the configured mean, at least 1.
        let p = 1.0 / self.objects_per_page.max(1.0);
        let mut k = 1u32;
        while !rng.chance(p) && k < 1000 {
            k += 1;
        }
        k
    }
}

impl ArrivalProcess for UserEquivalentArrivals {
    fn next_gap(&mut self, rng: &mut Rng64) -> f64 {
        if !self.initialized {
            self.initialized = true;
            for user in 0..self.n_users {
                let t = self.think.sample(rng);
                let objs = self.page_objects(rng);
                self.pending
                    .push(std::cmp::Reverse((OrderedF64(t), user, objs)));
            }
        }
        let std::cmp::Reverse((OrderedF64(t), user, remaining)) =
            self.pending.pop().expect("every user is always scheduled");
        let gap = (t - self.now).max(0.0);
        self.now = t;
        let next = if remaining > 1 {
            // More objects in this page: short gap.
            (OrderedF64(t + self.object_gap.sample(rng)), user, remaining - 1)
        } else {
            // Page done: think, then a new page.
            let objs = self.page_objects(rng);
            (OrderedF64(t + self.think.sample(rng)), user, objs)
        };
        self.pending.push(std::cmp::Reverse(next));
        gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kooza_stats::summary::burstiness_cv2;

    #[test]
    fn poisson_rate_and_cv() {
        let mut p = PoissonArrivals::new(50.0).unwrap();
        let mut rng = Rng64::new(1200);
        let gaps: Vec<f64> = (0..20_000).map(|_| p.next_gap(&mut rng)).collect();
        let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((1.0 / mean_gap - 50.0).abs() < 2.0, "rate {}", 1.0 / mean_gap);
        let cv2 = burstiness_cv2(&gaps).unwrap();
        assert!((cv2 - 1.0).abs() < 0.1, "cv² {cv2}");
        assert_eq!(p.mean_rate(), Some(50.0));
    }

    #[test]
    fn poisson_rejects_bad_rate() {
        assert!(PoissonArrivals::new(0.0).is_err());
        assert!(PoissonArrivals::new(-1.0).is_err());
    }

    #[test]
    fn renewal_with_pareto_is_bursty() {
        let gap = Pareto::new(0.001, 1.2).unwrap();
        let mut p = RenewalArrivals::new(Box::new(gap));
        let mut rng = Rng64::new(1201);
        let gaps: Vec<f64> = (0..20_000).map(|_| p.next_gap(&mut rng)).collect();
        let cv2 = burstiness_cv2(&gaps).unwrap();
        assert!(cv2 > 2.0, "cv² {cv2}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        let mut m = MmppArrivals::bursty(10.0, 500.0, 1.0).unwrap();
        let mut rng = Rng64::new(1202);
        let gaps: Vec<f64> = (0..30_000).map(|_| m.next_gap(&mut rng)).collect();
        let cv2 = burstiness_cv2(&gaps).unwrap();
        assert!(cv2 > 1.5, "cv² {cv2}");
    }

    #[test]
    fn mmpp_mean_rate_two_phase_symmetric() {
        let m = MmppArrivals::bursty(10.0, 100.0, 2.0).unwrap();
        // Symmetric switching: half the time in each phase.
        let r = m.mean_rate().unwrap();
        assert!((r - 55.0).abs() < 1e-6, "rate {r}");
    }

    #[test]
    fn mmpp_observed_rate_matches_analytic() {
        let mut m = MmppArrivals::bursty(20.0, 200.0, 5.0).unwrap();
        let analytic = m.mean_rate().unwrap();
        let mut rng = Rng64::new(1203);
        let n = 100_000;
        let total: f64 = (0..n).map(|_| m.next_gap(&mut rng)).sum();
        let observed = n as f64 / total;
        assert!(
            (observed - analytic).abs() / analytic < 0.1,
            "observed {observed} vs analytic {analytic}"
        );
    }

    #[test]
    fn mmpp_validation() {
        assert!(MmppArrivals::new(vec![], vec![], vec![]).is_err());
        assert!(MmppArrivals::new(vec![1.0], vec![0.0], vec![vec![1.0]]).is_err());
        assert!(MmppArrivals::new(vec![1.0], vec![1.0], vec![vec![0.5]]).is_err());
    }

    #[test]
    fn self_similar_gaps_are_long_range_dependent() {
        let mut s = SelfSimilarArrivals::new(200.0, 1.4, 16).unwrap();
        let mut rng = Rng64::new(1204);
        let times = arrival_times(&mut s, 60_000, &mut rng);
        // Bin into counts and estimate the Hurst exponent.
        let window = 0.05;
        let end = times.last().unwrap();
        let n_bins = (end / window) as usize;
        let mut counts = vec![0.0f64; n_bins + 1];
        for &t in &times {
            counts[(t / window) as usize] += 1.0;
        }
        let h = kooza_stats::hurst::hurst_aggregated_variance(&counts).unwrap();
        assert!(h > 0.6, "H = {h}");
        // LRD hallmark: the index of dispersion for counts grows with the
        // window (Poisson holds IDC ≈ 1 at every scale). Gap-level cv² is
        // *not* a reliable discriminator for on/off superpositions, which
        // is precisely why Hurst-style measures exist.
        let idc_small = kooza_stats::summary::index_of_dispersion(&times, 0.02).unwrap();
        let idc_large = kooza_stats::summary::index_of_dispersion(&times, 2.0).unwrap();
        assert!(
            idc_large > 3.0 * idc_small.max(0.5),
            "IDC small {idc_small}, large {idc_large}"
        );
    }

    #[test]
    fn self_similar_validation() {
        assert!(SelfSimilarArrivals::new(0.0, 1.5, 4).is_err());
        assert!(SelfSimilarArrivals::new(10.0, 2.5, 4).is_err());
        assert!(SelfSimilarArrivals::new(10.0, 1.5, 0).is_err());
    }

    #[test]
    fn user_equivalents_produce_page_bursts() {
        let mut u = UserEquivalentArrivals::new(20, 5.0, 8.0, 0.01).unwrap();
        let mut rng = Rng64::new(1205);
        let gaps: Vec<f64> = (0..20_000).map(|_| u.next_gap(&mut rng)).collect();
        // Bimodal gaps: many tiny in-page gaps, some large think-time gaps.
        let tiny = gaps.iter().filter(|&&g| g < 0.05).count() as f64 / gaps.len() as f64;
        assert!(tiny > 0.5, "tiny-gap fraction {tiny}");
        let cv2 = burstiness_cv2(&gaps).unwrap();
        assert!(cv2 > 1.5, "cv² {cv2}");
    }

    #[test]
    fn user_equivalents_validation() {
        assert!(UserEquivalentArrivals::new(0, 1.0, 1.0, 1.0).is_err());
        assert!(UserEquivalentArrivals::new(5, 0.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn diurnal_mean_rate_and_modulation() {
        let mut d = DiurnalArrivals::new(100.0, 0.8, 10.0).unwrap();
        let mut rng = Rng64::new(1210);
        let times = arrival_times(&mut d, 50_000, &mut rng);
        // Long-run rate ≈ base.
        let span = times.last().unwrap() - times[0];
        let rate = (times.len() - 1) as f64 / span;
        assert!((rate - 100.0).abs() < 5.0, "rate {rate}");
        // The first quarter-period (rising sinusoid) is denser than the
        // third quarter (trough).
        let count_in = |lo: f64, hi: f64| times.iter().filter(|&&t| t >= lo && t < hi).count();
        let total_periods = (span / 10.0) as usize;
        let mut peak = 0usize;
        let mut trough = 0usize;
        for p in 0..total_periods {
            let base = p as f64 * 10.0;
            peak += count_in(base + 1.5, base + 3.5); // around sin max (t=2.5)
            trough += count_in(base + 6.5, base + 8.5); // around sin min (t=7.5)
        }
        assert!(
            peak as f64 > 2.0 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn diurnal_rate_at_extremes() {
        let d = DiurnalArrivals::new(50.0, 0.5, 86_400.0).unwrap();
        assert!((d.rate_at(0.0) - 50.0).abs() < 1e-9);
        assert!((d.rate_at(86_400.0 / 4.0) - 75.0).abs() < 1e-9);
        assert!((d.rate_at(3.0 * 86_400.0 / 4.0) - 25.0).abs() < 1e-9);
        assert_eq!(d.mean_rate(), Some(50.0));
    }

    #[test]
    fn diurnal_validation() {
        assert!(DiurnalArrivals::new(0.0, 0.5, 10.0).is_err());
        assert!(DiurnalArrivals::new(10.0, 1.0, 10.0).is_err());
        assert!(DiurnalArrivals::new(10.0, -0.1, 10.0).is_err());
        assert!(DiurnalArrivals::new(10.0, 0.5, 0.0).is_err());
    }

    #[test]
    fn arrival_times_are_monotone() {
        let mut p = PoissonArrivals::new(100.0).unwrap();
        let mut rng = Rng64::new(1206);
        let times = arrival_times(&mut p, 1000, &mut rng);
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(times.len(), 1000);
    }
}
