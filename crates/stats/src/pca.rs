//! Principal component analysis.
//!
//! Abrahao et al. use PCA to categorize CPU-utilization patterns from large
//! trace volumes; KOOZA's §4 proposes PCA/SVD to keep per-subsystem model
//! feature spaces succinct. This implementation centers the data, performs a
//! Jacobi eigendecomposition of the covariance matrix, and exposes
//! projection, reconstruction, and explained-variance accounting.

use crate::matrix::Matrix;
use crate::{Result, StatsError};

/// A fitted PCA transform.
///
/// ```
/// use kooza_stats::pca::Pca;
/// // Points on the line y = 2x: one dominant component.
/// let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
/// let pca = Pca::fit(&rows)?;
/// assert!(pca.explained_variance_ratio()[0] > 0.999);
/// # Ok::<(), kooza_stats::StatsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    means: Vec<f64>,
    /// Columns are principal directions, descending eigenvalue.
    components: Matrix,
    eigenvalues: Vec<f64>,
}

impl Pca {
    /// Fits PCA on observation rows.
    ///
    /// # Errors
    ///
    /// Errors on fewer than two rows, ragged rows, or eigendecomposition
    /// failure.
    pub fn fit(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.len() < 2 {
            return Err(StatsError::InsufficientData { needed: 2, got: rows.len() });
        }
        let k = rows[0].len();
        if k == 0 {
            return Err(StatsError::InvalidInput("rows must be non-empty".into()));
        }
        let mut data = Matrix::zeros(rows.len(), k);
        for (r, row) in rows.iter().enumerate() {
            if row.len() != k {
                return Err(StatsError::InvalidInput("ragged rows".into()));
            }
            for (c, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(StatsError::NonFiniteData);
                }
                data.set(r, c, v);
            }
        }
        let n = rows.len() as f64;
        let means: Vec<f64> = (0..k).map(|c| data.col(c).iter().sum::<f64>() / n).collect();
        let cov = data.covariance()?;
        let (eigenvalues, components) = cov.symmetric_eigen()?;
        // Numerical noise can make tiny eigenvalues slightly negative.
        let eigenvalues = eigenvalues.into_iter().map(|l| l.max(0.0)).collect();
        Ok(Pca {
            means,
            components,
            eigenvalues,
        })
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Eigenvalues (variances along each component), descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Fraction of total variance explained by each component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.eigenvalues.iter().sum();
        if total == 0.0 {
            return vec![0.0; self.eigenvalues.len()];
        }
        self.eigenvalues.iter().map(|l| l / total).collect()
    }

    /// Smallest number of components whose cumulative explained variance
    /// reaches `threshold` (e.g. `0.95`).
    pub fn components_for_variance(&self, threshold: f64) -> usize {
        let ratios = self.explained_variance_ratio();
        let mut acc = 0.0;
        for (i, r) in ratios.iter().enumerate() {
            acc += r;
            if acc >= threshold {
                return i + 1;
            }
        }
        ratios.len()
    }

    /// Projects one observation onto the first `n_components` components.
    ///
    /// # Errors
    ///
    /// Errors on a feature-count mismatch or `n_components` out of range.
    pub fn transform(&self, row: &[f64], n_components: usize) -> Result<Vec<f64>> {
        if row.len() != self.means.len() {
            return Err(StatsError::InvalidInput("feature count mismatch".into()));
        }
        if n_components == 0 || n_components > self.means.len() {
            return Err(StatsError::InvalidInput(format!(
                "n_components {n_components} out of range"
            )));
        }
        let centered: Vec<f64> = row.iter().zip(&self.means).map(|(x, m)| x - m).collect();
        Ok((0..n_components)
            .map(|c| {
                (0..centered.len())
                    .map(|r| centered[r] * self.components.get(r, c))
                    .sum()
            })
            .collect())
    }

    /// Reconstructs an observation from its projection (lossy if
    /// `scores.len() < n_features`).
    ///
    /// # Errors
    ///
    /// Errors if more scores are given than components exist.
    pub fn inverse_transform(&self, scores: &[f64]) -> Result<Vec<f64>> {
        if scores.len() > self.means.len() {
            return Err(StatsError::InvalidInput("too many scores".into()));
        }
        let k = self.means.len();
        let mut out = self.means.clone();
        for (c, &s) in scores.iter().enumerate() {
            for (r, o) in out.iter_mut().enumerate().take(k) {
                *o += s * self.components.get(r, c);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kooza_sim::rng::Rng64;

    #[test]
    fn dominant_direction_found() {
        // Cloud stretched along (1, 1)/√2.
        let mut rng = Rng64::new(500);
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|_| {
                let big = (rng.next_f64() - 0.5) * 20.0;
                let small = (rng.next_f64() - 0.5) * 0.5;
                vec![big + small, big - small]
            })
            .collect();
        let pca = Pca::fit(&rows).unwrap();
        let ratio = pca.explained_variance_ratio();
        assert!(ratio[0] > 0.98, "ratio {ratio:?}");
        assert_eq!(pca.components_for_variance(0.95), 1);
    }

    #[test]
    fn transform_then_inverse_full_rank_is_identity() {
        let rows: Vec<Vec<f64>> = vec![
            vec![1.0, 2.0, 0.5],
            vec![2.0, 1.0, 1.5],
            vec![3.0, 4.0, 2.5],
            vec![4.0, 3.0, 0.2],
            vec![0.5, 1.2, 3.3],
        ];
        let pca = Pca::fit(&rows).unwrap();
        for row in &rows {
            let scores = pca.transform(row, 3).unwrap();
            let back = pca.inverse_transform(&scores).unwrap();
            for (a, b) in row.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "{row:?} != {back:?}");
            }
        }
    }

    #[test]
    fn truncated_reconstruction_error_is_small_for_low_rank_data() {
        // Rank-1 data reconstructs perfectly from one component.
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let t = i as f64;
                vec![t, 2.0 * t, -t]
            })
            .collect();
        let pca = Pca::fit(&rows).unwrap();
        let scores = pca.transform(&rows[7], 1).unwrap();
        let back = pca.inverse_transform(&scores).unwrap();
        for (a, b) in rows[7].iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn explained_variance_sums_to_one() {
        let mut rng = Rng64::new(501);
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|_| (0..4).map(|_| rng.next_f64()).collect())
            .collect();
        let pca = Pca::fit(&rows).unwrap();
        let total: f64 = pca.explained_variance_ratio().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Pca::fit(&[vec![1.0, 2.0]]).is_err());
        assert!(Pca::fit(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Pca::fit(&[vec![f64::NAN], vec![1.0]]).is_err());
        let pca = Pca::fit(&[vec![1.0, 2.0], vec![2.0, 1.0], vec![0.0, 3.0]]).unwrap();
        assert!(pca.transform(&[1.0], 1).is_err());
        assert!(pca.transform(&[1.0, 2.0], 0).is_err());
        assert!(pca.transform(&[1.0, 2.0], 3).is_err());
        assert!(pca.inverse_transform(&[1.0, 2.0, 3.0]).is_err());
    }
}
