//! An event-driven open queueing-network simulator.
//!
//! Nodes are multi-server FIFO stations with arbitrary service-time
//! distributions; jobs enter from an [`ArrivalProcess`], route
//! probabilistically between nodes, and exit. This is the simulation
//! engine behind the in-depth baselines (3-tier web model, SQS) and the
//! validation target for the analytic formulas in [`crate::analytic`].

use std::collections::HashMap;

use kooza_sim::rng::Rng64;
use kooza_sim::{Engine, ServerPool, SimDuration, SimTime, Tally};
use kooza_stats::dist::Distribution;

use crate::arrival::ArrivalProcess;
use crate::{QueueError, Result};

/// One station in the network.
#[derive(Debug)]
pub struct NodeConfig {
    /// Display name.
    pub name: String,
    /// Parallel servers.
    pub servers: usize,
    /// Service-time distribution, seconds.
    pub service: Box<dyn Distribution>,
}

/// An open queueing network.
///
/// `routing[i]` has `n + 1` entries: probabilities of moving from node `i`
/// to each node, with the final entry the probability of leaving the
/// system. `entry` gives the distribution of the node where external
/// arrivals enter.
#[derive(Debug)]
pub struct NetworkConfig {
    /// Stations.
    pub nodes: Vec<NodeConfig>,
    /// Routing matrix, `n x (n + 1)` (last column = exit).
    pub routing: Vec<Vec<f64>>,
    /// Entry-node distribution, length `n`.
    pub entry: Vec<f64>,
}

impl NetworkConfig {
    /// A tandem line: node 0 → 1 → ... → n−1 → exit.
    pub fn tandem(nodes: Vec<NodeConfig>) -> Self {
        let n = nodes.len();
        let mut routing = vec![vec![0.0; n + 1]; n];
        for (i, row) in routing.iter_mut().enumerate() {
            if i + 1 < n {
                row[i + 1] = 1.0;
            } else {
                row[n] = 1.0;
            }
        }
        let mut entry = vec![0.0; n];
        if n > 0 {
            entry[0] = 1.0;
        }
        NetworkConfig {
            nodes,
            routing,
            entry,
        }
    }

    fn validate(&self) -> Result<()> {
        let n = self.nodes.len();
        if n == 0 {
            return Err(QueueError::InvalidTopology("network needs at least one node".into()));
        }
        if self.routing.len() != n || self.entry.len() != n {
            return Err(QueueError::InvalidTopology("routing/entry dimension mismatch".into()));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.servers == 0 {
                return Err(QueueError::InvalidTopology(format!(
                    "node {i} ({}) has zero servers",
                    node.name
                )));
            }
        }
        for (i, row) in self.routing.iter().enumerate() {
            if row.len() != n + 1 {
                return Err(QueueError::InvalidTopology(format!(
                    "routing row {i} has {} entries, expected {}",
                    row.len(),
                    n + 1
                )));
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(QueueError::InvalidTopology(format!(
                    "routing row {i} sums to {sum}"
                )));
            }
        }
        let entry_sum: f64 = self.entry.iter().sum();
        if (entry_sum - 1.0).abs() > 1e-9 {
            return Err(QueueError::InvalidTopology(format!(
                "entry distribution sums to {entry_sum}"
            )));
        }
        Ok(())
    }
}

/// Per-node simulation output.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// Node name.
    pub name: String,
    /// Time-averaged utilization in `[0, 1]`.
    pub utilization: f64,
    /// Time-averaged queue length (waiting jobs).
    pub mean_queue_len: f64,
    /// Mean time in queue, seconds.
    pub mean_wait_secs: f64,
    /// Service completions at this node.
    pub completions: u64,
}

/// Whole-network simulation output.
#[derive(Debug, Clone)]
pub struct NetworkResults {
    /// Per-node statistics.
    pub nodes: Vec<NodeStats>,
    /// End-to-end sojourn times (seconds) of completed jobs, streaming view.
    pub sojourn_secs: Tally,
    /// Raw per-job sojourn times (seconds), completion order — for
    /// percentile analysis.
    pub sojourn_samples: Vec<f64>,
    /// Jobs that left the system.
    pub completed: u64,
    /// Simulated makespan, seconds.
    pub makespan_secs: f64,
}

impl NetworkResults {
    /// Mean end-to-end response time in seconds.
    pub fn mean_response_secs(&self) -> f64 {
        self.sojourn_secs.mean()
    }

    /// System throughput in jobs/second over the makespan.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.makespan_secs > 0.0 {
            self.completed as f64 / self.makespan_secs
        } else {
            0.0
        }
    }
}

#[derive(Debug)]
enum Ev {
    /// External arrival of job `id` (the next one is scheduled on pop).
    External { id: u64 },
    /// Job lands at a node.
    Arrive { node: usize, id: u64 },
    /// A service finishes at a node.
    Done { node: usize, id: u64 },
}

/// Simulates `n_jobs` external arrivals through the network and drains it.
///
/// # Errors
///
/// Returns topology-validation errors; the simulation itself cannot fail.
pub fn simulate(
    config: &NetworkConfig,
    arrivals: &mut dyn ArrivalProcess,
    n_jobs: u64,
    rng: &mut Rng64,
) -> Result<NetworkResults> {
    config.validate()?;
    let n = config.nodes.len();
    let mut engine: Engine<Ev> = Engine::new();
    let mut pools: Vec<ServerPool<u64>> = config
        .nodes
        .iter()
        .map(|node| ServerPool::new(node.servers))
        .collect();
    let mut completions = vec![0u64; n];
    let mut entry_times: HashMap<u64, SimTime> = HashMap::new();
    let mut sojourn = Tally::new();
    let mut sojourn_samples = Vec::new();
    let mut completed = 0u64;
    let mut next_id = 0u64;

    let sample_service = |node: usize, rng: &mut Rng64| -> SimDuration {
        SimDuration::from_secs_f64(config.nodes[node].service.sample(rng).max(0.0))
    };

    if n_jobs > 0 {
        let first = arrivals.next_gap(rng);
        engine.schedule(SimDuration::from_secs_f64(first.max(0.0)), Ev::External { id: 0 });
        next_id = 1;
    }

    while let Some((now, ev)) = engine.next() {
        match ev {
            Ev::External { id } => {
                if next_id < n_jobs {
                    let gap = arrivals.next_gap(rng);
                    engine.schedule(
                        SimDuration::from_secs_f64(gap.max(0.0)),
                        Ev::External { id: next_id },
                    );
                    next_id += 1;
                }
                entry_times.insert(id, now);
                let node = rng.choose_weighted(&config.entry);
                engine.schedule(SimDuration::ZERO, Ev::Arrive { node, id });
            }
            Ev::Arrive { node, id } => {
                if let Some(job) = pools[node].arrive(now, id) {
                    let service = sample_service(node, rng);
                    engine.schedule(service, Ev::Done { node, id: job });
                }
            }
            Ev::Done { node, id } => {
                completions[node] += 1;
                // Route the finished job.
                let dest = rng.choose_weighted(&config.routing[node]);
                if dest == n {
                    // Exit.
                    if let Some(entered) = entry_times.remove(&id) {
                        let secs = (now - entered).as_secs_f64();
                        sojourn.record(secs);
                        sojourn_samples.push(secs);
                    }
                    completed += 1;
                } else {
                    engine.schedule(SimDuration::ZERO, Ev::Arrive { node: dest, id });
                }
                // Release the server; start the next queued job if any.
                if let Some(job) = pools[node].complete(now) {
                    let service = sample_service(node, rng);
                    engine.schedule(service, Ev::Done { node, id: job });
                }
            }
        }
    }

    let end = engine.now();
    let nodes = config
        .nodes
        .iter()
        .zip(pools.iter())
        .zip(completions.iter())
        .map(|((node, pool), &comps)| NodeStats {
            name: node.name.clone(),
            utilization: pool.utilization(end),
            mean_queue_len: pool.mean_queue_len(end),
            mean_wait_secs: pool.mean_wait().as_secs_f64(),
            completions: comps,
        })
        .collect();
    Ok(NetworkResults {
        nodes,
        sojourn_secs: sojourn,
        sojourn_samples,
        completed,
        makespan_secs: end.as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{mm1, mmc};
    use crate::arrival::PoissonArrivals;
    use kooza_stats::dist::Exponential;

    fn node(name: &str, servers: usize, mu: f64) -> NodeConfig {
        NodeConfig {
            name: name.into(),
            servers,
            service: Box::new(Exponential::new(mu).unwrap()),
        }
    }

    #[test]
    fn single_node_matches_mm1() {
        let config = NetworkConfig::tandem(vec![node("q", 1, 10.0)]);
        let mut arrivals = PoissonArrivals::new(7.0).unwrap();
        let mut rng = Rng64::new(1300);
        let res = simulate(&config, &mut arrivals, 200_000, &mut rng).unwrap();
        let analytic = mm1(7.0, 10.0).unwrap();
        let sim_resp = res.mean_response_secs();
        assert!(
            (sim_resp - analytic.mean_response).abs() / analytic.mean_response < 0.05,
            "simulated {sim_resp} vs analytic {}",
            analytic.mean_response
        );
        assert!(
            (res.nodes[0].utilization - analytic.utilization).abs() < 0.02,
            "utilization {}",
            res.nodes[0].utilization
        );
    }

    #[test]
    fn multi_server_node_matches_mmc() {
        let config = NetworkConfig::tandem(vec![node("q", 4, 3.0)]);
        let mut arrivals = PoissonArrivals::new(9.0).unwrap();
        let mut rng = Rng64::new(1301);
        let res = simulate(&config, &mut arrivals, 150_000, &mut rng).unwrap();
        let analytic = mmc(9.0, 3.0, 4).unwrap();
        let sim_wait = res.nodes[0].mean_wait_secs;
        assert!(
            (sim_wait - analytic.mean_wait).abs() / analytic.mean_wait < 0.1,
            "simulated wait {sim_wait} vs analytic {}",
            analytic.mean_wait
        );
    }

    #[test]
    fn tandem_response_is_sum_of_stations() {
        // Jackson: each station in a tandem behaves as an independent M/M/1.
        let config = NetworkConfig::tandem(vec![node("a", 1, 20.0), node("b", 1, 15.0)]);
        let mut arrivals = PoissonArrivals::new(8.0).unwrap();
        let mut rng = Rng64::new(1302);
        let res = simulate(&config, &mut arrivals, 150_000, &mut rng).unwrap();
        let expect = mm1(8.0, 20.0).unwrap().mean_response + mm1(8.0, 15.0).unwrap().mean_response;
        let got = res.mean_response_secs();
        assert!((got - expect).abs() / expect < 0.06, "sim {got} vs jackson {expect}");
    }

    #[test]
    fn probabilistic_routing_splits_load() {
        // One entry node fanning 30/70 to two exits.
        let nodes = vec![node("front", 2, 50.0), node("a", 1, 50.0), node("b", 1, 50.0)];
        let routing = vec![
            vec![0.0, 0.3, 0.7, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0, 1.0],
        ];
        let entry = vec![1.0, 0.0, 0.0];
        let config = NetworkConfig { nodes, routing, entry };
        let mut arrivals = PoissonArrivals::new(10.0).unwrap();
        let mut rng = Rng64::new(1303);
        let res = simulate(&config, &mut arrivals, 50_000, &mut rng).unwrap();
        let frac_a =
            res.nodes[1].completions as f64 / (res.nodes[1].completions + res.nodes[2].completions) as f64;
        assert!((frac_a - 0.3).abs() < 0.02, "split {frac_a}");
        assert_eq!(res.completed, 50_000);
    }

    #[test]
    fn feedback_loop_inflates_visits() {
        // Node 0 loops back to itself with p = 0.5 → 2 visits per job.
        let nodes = vec![node("loop", 1, 40.0)];
        let routing = vec![vec![0.5, 0.5]];
        let entry = vec![1.0];
        let config = NetworkConfig { nodes, routing, entry };
        let mut arrivals = PoissonArrivals::new(5.0).unwrap();
        let mut rng = Rng64::new(1304);
        let res = simulate(&config, &mut arrivals, 40_000, &mut rng).unwrap();
        let visits = res.nodes[0].completions as f64 / res.completed as f64;
        assert!((visits - 2.0).abs() < 0.05, "visits {visits}");
    }

    #[test]
    fn throughput_equals_offered_when_stable() {
        let config = NetworkConfig::tandem(vec![node("q", 1, 30.0)]);
        let mut arrivals = PoissonArrivals::new(10.0).unwrap();
        let mut rng = Rng64::new(1305);
        let res = simulate(&config, &mut arrivals, 100_000, &mut rng).unwrap();
        assert!((res.throughput_per_sec() - 10.0).abs() < 0.3, "tput {}", res.throughput_per_sec());
    }

    #[test]
    fn invalid_topologies_rejected() {
        // Zero nodes.
        let config = NetworkConfig { nodes: vec![], routing: vec![], entry: vec![] };
        let mut arrivals = PoissonArrivals::new(1.0).unwrap();
        let mut rng = Rng64::new(1);
        assert!(simulate(&config, &mut arrivals, 1, &mut rng).is_err());
        // Bad routing sum.
        let config = NetworkConfig {
            nodes: vec![node("a", 1, 1.0)],
            routing: vec![vec![0.5, 0.4]],
            entry: vec![1.0],
        };
        assert!(simulate(&config, &mut arrivals, 1, &mut rng).is_err());
        // Zero-server node.
        let config = NetworkConfig {
            nodes: vec![NodeConfig {
                name: "z".into(),
                servers: 0,
                service: Box::new(Exponential::new(1.0).unwrap()),
            }],
            routing: vec![vec![0.0, 1.0]],
            entry: vec![1.0],
        };
        assert!(simulate(&config, &mut arrivals, 1, &mut rng).is_err());
    }

    #[test]
    fn zero_jobs_is_a_noop() {
        let config = NetworkConfig::tandem(vec![node("q", 1, 10.0)]);
        let mut arrivals = PoissonArrivals::new(1.0).unwrap();
        let mut rng = Rng64::new(2);
        let res = simulate(&config, &mut arrivals, 0, &mut rng).unwrap();
        assert_eq!(res.completed, 0);
        assert_eq!(res.sojourn_secs.count(), 0);
    }
}
