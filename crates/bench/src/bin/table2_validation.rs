//! TAB2 — Validation of request features and latency metrics using KOOZA.
//!
//! Reproduces the paper's Table 2: train KOOZA on traces of two GFS user
//! request classes (a 64 KB read and a 4 MB write), generate synthetic
//! requests, and compare request features (network size, CPU utilization,
//! memory size/type, storage size/type) and latency. The paper reports
//! feature variation ≤ 1% and latency variation ≤ 6.6%.
//!
//! The two request classes are independent end-to-end (own cluster, own
//! trace, own model), so they run concurrently via `kooza-exec`; reports
//! are printed in case order afterwards, keeping the output byte-identical
//! at any thread count.

use kooza::class::assemble_observations;
use kooza::validate::validate;
use kooza::{Kooza, ReplayConfig, WorkloadModel};
use kooza_bench::{banner, read_64k_cluster, run, section, write_4m_cluster, EXPERIMENT_SEED};
use kooza_sim::rng::Rng64;

fn main() {
    banner("TAB2", "Validation of request features and latency using KOOZA");

    let cases = [
        ("1st user request (64 KB read)", true),
        ("2nd user request (4 MB write)", false),
    ];
    let reports = kooza_exec::par_map(&cases, |&(_, is_read)| {
        let (config, mut cluster) = if is_read { read_64k_cluster() } else { write_4m_cluster() };
        let n = if is_read { 2000 } else { 800 };
        let outcome = run(&mut cluster, n);
        let observations = assemble_observations(&outcome.trace).expect("trace assembles");
        let model = Kooza::fit(&outcome.trace).expect("model trains");
        let mut rng = Rng64::new(EXPERIMENT_SEED + 1);
        let synthetic = model.generate(n as usize, &mut rng);
        validate(&model, &observations, &synthetic, ReplayConfig::from(&config))
    });
    for ((label, _), report) in cases.iter().zip(&reports) {
        section(label);
        print!("{}", report.render());
        println!(
            "max feature variation: {:.2}% | latency variation: {:.2}%",
            report.max_feature_variation(),
            report.latency_variation().unwrap_or(f64::NAN)
        );
        println!("paper reference: features ≤ 1% | latency ≤ 6.6% (1st: 3.7%, 2nd: 6.6%)");
    }
}
