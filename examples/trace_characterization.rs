//! Trace characterization: the in-breadth toolbox applied to a raw trace.
//!
//! Runs the full characterization pipeline of the surveyed literature on a
//! simulated GFS trace: per-subsystem profiles (Gulati-style storage
//! features, Abrahao-style CPU pattern classes), arrival-distribution
//! fitting with KS ranking (Feitelson), burstiness and self-similarity
//! measures.
//!
//! Run with: `cargo run --example trace_characterization`

use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};
use kooza_stats::fit::FitPipeline;
use kooza_stats::hurst::hurst_aggregated_variance;
use kooza_trace::characterize::{arrival_profile, cpu_profile, memory_profile, storage_profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = ClusterConfig::small();
    config.workload = WorkloadMix::mixed();
    let outcome = Cluster::new(&config)?.run(3000, 9);
    let trace = &outcome.trace;

    println!("== storage profile (Gulati et al. feature set) ==");
    let sp = storage_profile(&trace.storage)?;
    println!("I/Os: {}", sp.count);
    println!("read fraction: {:.2}", sp.read_fraction);
    println!("mean size: {:.0} B", sp.mean_size);
    println!("sequential fraction: {:.3}", sp.sequential_fraction);
    if let Some(seek) = &sp.seek_distance {
        println!("seek distance: mean {:.0} LBNs, p95 {:.0}", seek.mean, seek.p95);
    }

    println!("\n== CPU profile (Abrahao et al. pattern classes) ==");
    let cp = cpu_profile(&trace.cpu)?;
    println!(
        "utilization: mean {:.2}%, p99 {:.2}%",
        cp.utilization.mean * 100.0,
        cp.utilization.p99 * 100.0
    );
    println!("pattern: {:?} (period lag: {:?})", cp.pattern, cp.period_lag);

    println!("\n== memory profile ==");
    let mp = memory_profile(&trace.memory)?;
    println!("accesses: {}, read fraction {:.2}", mp.count, mp.read_fraction);
    println!("same-bank locality: {:.3}", mp.same_bank_fraction);
    println!("bank counts: {:?}", mp.bank_counts);

    println!("\n== arrival profile + distribution fitting (Feitelson) ==");
    let ap = arrival_profile(&trace.network)?;
    println!("arrivals: {} at {:.1} req/s", ap.count, ap.rate_per_sec);
    println!("burstiness cv²: {:.2}", ap.burstiness_cv2.unwrap_or(f64::NAN));
    let report = FitPipeline::timing().run(&ap.interarrivals)?;
    println!("KS-ranked inter-arrival fits:");
    for entry in report.entries() {
        println!(
            "  {:<12} D = {:.4}  p = {:.4}  mean-LL = {:.2}",
            entry.family, entry.ks.statistic, entry.ks.p_value, entry.mean_log_likelihood
        );
    }

    // Self-similarity of the arrival counts.
    let window = 0.1;
    let mut counts = vec![
        0.0f64;
        (ap.interarrivals.iter().sum::<f64>() / window).ceil() as usize + 1
    ];
    let mut t = 0.0;
    for gap in &ap.interarrivals {
        t += gap;
        let idx = (t / window) as usize;
        if idx < counts.len() {
            counts[idx] += 1.0;
        }
    }
    if counts.len() >= 64 {
        println!(
            "\nHurst exponent of arrival counts (aggregated variance): {:.3}",
            hurst_aggregated_variance(&counts)?
        );
        println!("(≈0.5 = short-range dependence; this workload uses Poisson arrivals)");
    }
    Ok(())
}
