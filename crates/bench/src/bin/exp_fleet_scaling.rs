//! EXP-I — Multiple model instances scale to multi-server scenarios (§4/§5).
//!
//! §4: "Scaling to multiple servers in order to simulate real-application
//! scenarios requires multiple instances of the model." We run a 4-server
//! replicated GFS cluster, train one KOOZA instance per server from its own
//! trace, then check that the per-server models reproduce each server's
//! arrival rate and latency — and that fleet model size grows linearly
//! (the Table-1 scalability column, measured).

use kooza::class::assemble_observations_view;
use kooza::{KoozaFleet, ReplayConfig};
use kooza_bench::{banner, section, EXPERIMENT_SEED};
use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};
use kooza_sim::rng::Rng64;

fn main() {
    banner("EXP-I", "Per-server model instances on a replicated cluster");

    let n_servers = 4;
    let mut config = ClusterConfig::cluster(n_servers);
    config.workload = WorkloadMix {
        read_fraction: 1.0,
        mean_interarrival_secs: 0.008,
        n_chunks: 4000,
        zipf_skew: 0.8,
        ..WorkloadMix::read_heavy()
    };
    let mut cluster = Cluster::new(&config).expect("config");
    let outcome = cluster.run(4000, EXPERIMENT_SEED);

    // Per-server training reads borrowed views over the single owned trace
    // (no per-server clones) and fits the instances in parallel.
    let views = outcome.server_views();
    let fleet = KoozaFleet::fit_views(&views).expect("fleet trains");
    let mut rng = Rng64::new(EXPERIMENT_SEED + 4);
    let streams = fleet.generate_per_server(1000, &mut rng);

    section("per-server fidelity");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "server", "rate orig", "rate model", "lat orig (ms)", "lat model (ms)"
    );
    for (i, view) in views.iter().enumerate() {
        let obs = assemble_observations_view(view).expect("assembles");
        let span_secs = (obs.last().unwrap().arrival_nanos - obs[0].arrival_nanos) as f64 / 1e9;
        let orig_rate = (obs.len() - 1) as f64 / span_secs;
        let orig_lat = obs.iter().map(|o| o.latency_nanos as f64 / 1e6).sum::<f64>()
            / obs.len() as f64;
        let model_rate = fleet.server(i).network().mean_rate();
        let replayed =
            kooza::replay_loaded_latency_secs(&streams[i], ReplayConfig::from(&config));
        let model_lat = replayed.iter().sum::<f64>() / replayed.len() as f64 * 1e3;
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>14.2} {:>14.2}",
            i, orig_rate, model_rate, orig_lat, model_lat
        );
    }
    println!(
        "\naggregate: cluster offered {:.0} req/s; fleet models sum to {:.1} req/s",
        1.0 / config.workload.mean_interarrival_secs,
        fleet.aggregate_rate()
    );

    section("scalability (parameters grow linearly in servers)");
    println!(
        "{} servers → {} trained parameters ({} per server on average)",
        fleet.len(),
        fleet.parameter_count(),
        fleet.parameter_count() / fleet.len()
    );
    println!(
        "\npaper claim (§4, Table 1 'Scalability'): per-server instances keep\n\
         the model structure constant while state grows linearly — no\n\
         cross-server coupling beyond shared request ids."
    );
}
