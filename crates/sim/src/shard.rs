//! Time-windowed multi-engine coordination: the substrate for sharded
//! simulations.
//!
//! A sharded simulation partitions its model into `n` shards, each owning
//! a private [`Engine`](crate::Engine) and the state it simulates. Shards
//! advance in **lockstep windows** of fixed simulated width: within a
//! window every shard processes only its local events, and anything that
//! crosses a shard boundary becomes a *message* buffered in the sending
//! shard's [`Outbox`]. At the window barrier all outboxes are collected
//! and [`ShardedEngine::exchange`] redistributes the messages to their
//! destination shards in **canonical order** — sorted by
//! `(send time, sending shard, per-shard send sequence)` — so the
//! delivery order (and therefore everything downstream of it) is a pure
//! function of the simulation, never of which thread ran which shard or
//! which shard finished its window first.
//!
//! The contract this module provides:
//!
//! * **Window isolation.** A message sent during window `w` is visible to
//!   its destination no earlier than the barrier ending window `w` — the
//!   runner delivers it at the window-boundary instant. Cross-shard
//!   interactions therefore pay a bounded, deterministic latency of at
//!   most one window width per hop.
//! * **Canonical exchange order.** [`ShardedEngine::exchange`] sorts every
//!   destination's inbox by `(at, from, seq)`. Outboxes may be handed to
//!   it in any order (they identify their own shard), and two envelopes
//!   never tie: `seq` is unique per sending shard and strictly
//!   monotonic across the whole run.
//! * **Thread independence.** Nothing in this module reads clocks,
//!   thread ids or completion order; running the per-window shard steps
//!   serially or on any number of threads yields byte-identical exchanges.
//!
//! The module is model-agnostic: `kooza-gfs` layers its cluster protocol
//! on top (see `sharded.rs` there), and `examples/incast.rs` shows a
//! minimal two-shard model.

use crate::time::{SimDuration, SimTime};

/// Splits `n_items` items into `n_shards` contiguous index ranges, as
/// evenly as possible: the first `n_items % n_shards` shards get one
/// extra item. The canonical server→shard partition for sharded models.
///
/// # Panics
///
/// Panics if `n_shards` is 0.
pub fn shard_ranges(n_items: usize, n_shards: usize) -> Vec<std::ops::Range<usize>> {
    assert!(n_shards > 0, "need at least one shard");
    let base = n_items / n_shards;
    let extra = n_items % n_shards;
    let mut ranges = Vec::with_capacity(n_shards);
    let mut lo = 0;
    for i in 0..n_shards {
        let len = base + usize::from(i < extra);
        ranges.push(lo..lo + len);
        lo += len;
    }
    ranges
}

/// One cross-shard message in flight: the payload plus the canonical
/// ordering key `(at, from, seq)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Simulated instant the message was sent.
    pub at: SimTime,
    /// Index of the sending shard.
    pub from: usize,
    /// Send sequence within the sending shard (unique, monotonic for the
    /// whole run, so `(at, from, seq)` never ties).
    pub seq: u64,
    /// The message payload.
    pub msg: M,
}

/// A shard's buffered outgoing messages for the current window.
///
/// Each shard owns one `Outbox` for the lifetime of the run; `send`
/// stamps envelopes with the shard index and a monotonically increasing
/// sequence number, and the barrier drains it via
/// [`ShardedEngine::exchange`].
#[derive(Debug)]
pub struct Outbox<M> {
    from: usize,
    seq: u64,
    queued: Vec<(usize, Envelope<M>)>,
}

impl<M> Outbox<M> {
    /// An empty outbox for shard `from`.
    pub fn new(from: usize) -> Self {
        Outbox { from, seq: 0, queued: Vec::new() }
    }

    /// The index of the shard this outbox belongs to.
    pub fn shard(&self) -> usize {
        self.from
    }

    /// Buffers `msg` for delivery to shard `to` at the next barrier,
    /// stamped with the send time `at`.
    pub fn send(&mut self, to: usize, at: SimTime, msg: M) {
        let env = Envelope { at, from: self.from, seq: self.seq, msg };
        self.seq += 1;
        self.queued.push((to, env));
    }

    /// Messages buffered since the last exchange.
    pub fn len(&self) -> usize {
        self.queued.len()
    }

    /// Whether no message is buffered.
    pub fn is_empty(&self) -> bool {
        self.queued.is_empty()
    }
}

/// The window-barrier coordinator for a set of shard engines.
///
/// `ShardedEngine` owns the window clock and the mailbox exchange; the
/// *runner* (the model-specific code) owns the shards themselves and
/// drives each one to [`ShardedEngine::window_end`] between barriers —
/// serially or in parallel, the exchange result is identical. See the
/// module docs for the ordering contract.
#[derive(Debug)]
pub struct ShardedEngine<M> {
    n_shards: usize,
    width: SimDuration,
    /// Completed barriers.
    windows: u64,
    /// Envelopes exchanged across all barriers so far.
    messages: u64,
    _msg: std::marker::PhantomData<M>,
}

impl<M> ShardedEngine<M> {
    /// A coordinator for `n_shards` shards advancing in windows of
    /// `width` simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is 0 or `width` is zero — a zero-width
    /// window could never advance the simulation.
    pub fn new(n_shards: usize, width: SimDuration) -> Self {
        assert!(n_shards > 0, "a sharded engine needs at least one shard");
        assert!(width > SimDuration::ZERO, "window width must be positive");
        ShardedEngine {
            n_shards,
            width,
            windows: 0,
            messages: 0,
            _msg: std::marker::PhantomData,
        }
    }

    /// Number of shards under coordination.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The window width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// One fresh outbox per shard, indexed by shard.
    pub fn outboxes(&self) -> Vec<Outbox<M>> {
        (0..self.n_shards).map(Outbox::new).collect()
    }

    /// The exclusive end of the current window: shards process events
    /// strictly before this instant, and the barrier delivers messages at
    /// exactly this instant.
    pub fn window_end(&self) -> SimTime {
        SimTime::ZERO + self.width * (self.windows + 1)
    }

    /// Barriers completed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Envelopes exchanged across all barriers so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Runs the barrier: drains every outbox, advances the window clock,
    /// and returns each shard's inbox in canonical `(at, from, seq)`
    /// order. Outboxes may be supplied in any order; destinations out of
    /// range panic (a model bug).
    pub fn exchange<'a, I>(&mut self, outboxes: I) -> Vec<Vec<Envelope<M>>>
    where
        M: 'a,
        I: IntoIterator<Item = &'a mut Outbox<M>>,
    {
        let mut inboxes: Vec<Vec<Envelope<M>>> = (0..self.n_shards).map(|_| Vec::new()).collect();
        for outbox in outboxes {
            for (to, env) in outbox.queued.drain(..) {
                assert!(to < self.n_shards, "message to unknown shard {to}");
                self.messages += 1;
                inboxes[to].push(env);
            }
        }
        for inbox in &mut inboxes {
            inbox.sort_by(|a, b| {
                (a.at, a.from, a.seq).cmp(&(b.at, b.from, b.seq))
            });
        }
        self.windows += 1;
        inboxes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_clock_advances_by_width() {
        let mut eng: ShardedEngine<()> = ShardedEngine::new(2, SimDuration::from_micros(100));
        assert_eq!(eng.window_end(), SimTime::from_micros(100));
        let mut boxes = eng.outboxes();
        let _ = eng.exchange(boxes.iter_mut());
        assert_eq!(eng.window_end(), SimTime::from_micros(200));
        assert_eq!(eng.windows(), 1);
    }

    #[test]
    fn exchange_sorts_by_time_then_shard_then_seq() {
        let mut eng: ShardedEngine<&'static str> =
            ShardedEngine::new(3, SimDuration::from_micros(50));
        let mut boxes = eng.outboxes();
        // Shard 2 sends early and late; shard 0 sends in between; ties on
        // time break by shard, then by send order.
        boxes[2].send(1, SimTime::from_nanos(30), "c-late");
        boxes[2].send(1, SimTime::from_nanos(10), "c-early");
        boxes[0].send(1, SimTime::from_nanos(30), "a-tie-first");
        boxes[0].send(1, SimTime::from_nanos(30), "a-tie-second");
        let inboxes = eng.exchange(boxes.iter_mut());
        let got: Vec<&str> = inboxes[1].iter().map(|e| e.msg).collect();
        assert_eq!(got, vec!["c-early", "a-tie-first", "a-tie-second", "c-late"]);
        assert!(inboxes[0].is_empty() && inboxes[2].is_empty());
        assert_eq!(eng.messages(), 4);
    }

    #[test]
    fn outbox_order_does_not_matter() {
        let build = |order: &[usize]| {
            let mut eng: ShardedEngine<u64> = ShardedEngine::new(4, SimDuration::from_micros(10));
            let mut boxes = eng.outboxes();
            for (s, outbox) in boxes.iter_mut().enumerate() {
                for k in 0..3u64 {
                    outbox.send((s + 1) % 4, SimTime::from_nanos(100 - k), s as u64 * 10 + k);
                }
            }
            // Hand the outboxes to the barrier in the given permutation.
            let mut refs: Vec<&mut Outbox<u64>> = boxes.iter_mut().collect();
            let mut permuted: Vec<&mut Outbox<u64>> = Vec::new();
            for &i in order {
                // Move out by index without cloning.
                permuted.push(refs.remove(refs.iter().position(|r| r.shard() == i).unwrap()));
            }
            eng.exchange(permuted)
        };
        let a = build(&[0, 1, 2, 3]);
        let b = build(&[3, 1, 0, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn sequence_numbers_persist_across_windows() {
        let mut eng: ShardedEngine<u8> = ShardedEngine::new(2, SimDuration::from_micros(10));
        let mut boxes = eng.outboxes();
        boxes[0].send(1, SimTime::from_nanos(1), 1);
        let _ = eng.exchange(boxes.iter_mut());
        boxes[0].send(1, SimTime::from_nanos(11), 2);
        let inboxes = eng.exchange(boxes.iter_mut());
        // The second window's envelope continues the shard's sequence.
        assert_eq!(inboxes[1][0].seq, 1);
        assert_eq!(eng.messages(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown shard")]
    fn out_of_range_destination_panics() {
        let mut eng: ShardedEngine<()> = ShardedEngine::new(2, SimDuration::from_micros(10));
        let mut boxes = eng.outboxes();
        boxes[0].send(7, SimTime::ZERO, ());
        let _ = eng.exchange(boxes.iter_mut());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _: ShardedEngine<()> = ShardedEngine::new(0, SimDuration::from_micros(1));
    }

    #[test]
    fn shard_ranges_cover_everything_evenly() {
        for (n, k) in [(12, 4), (13, 4), (7, 2), (5, 5), (3, 4), (0, 2)] {
            let ranges = shard_ranges(n, k);
            assert_eq!(ranges.len(), k);
            assert_eq!(ranges.first().map(|r| r.start), Some(0));
            assert_eq!(ranges.last().map(|r| r.end), Some(n));
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "gap between {:?} and {:?}", w[0], w[1]);
            }
            let sizes: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "uneven split {sizes:?}");
        }
    }
}
