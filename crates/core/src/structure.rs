//! The time-dependency structure queue.
//!
//! §4: "a queue, configurable for each workload, that demonstrates the
//! structure of the application, i.e. the order in which each model
//! becomes active." Trained from span trees: each distinct leaf-phase
//! sequence is a *class*; the queue stores class probabilities plus the
//! class-conditional feature distributions that tie the four subsystem
//! models together per request.

use kooza_sim::rng::Rng64;
use kooza_stats::dist::Empirical;
use kooza_trace::record::IoOp;

use crate::class::{group_by_class, ClassSignature, RequestObservation};
use crate::{ModelError, Result};

/// Class-conditional feature distributions for one request class.
#[derive(Debug)]
pub struct ClassModel {
    /// The class's phase sequence.
    pub signature: ClassSignature,
    /// Fraction of requests in this class.
    pub probability: f64,
    /// Ingress sizes, bytes.
    pub net_in: Empirical,
    /// Egress sizes, bytes.
    pub net_out: Empirical,
    /// Total CPU busy time, nanoseconds.
    pub cpu_busy: Empirical,
    /// Memory access sizes, bytes (absent if the class touches no memory).
    pub mem_size: Option<Empirical>,
    /// Memory read fraction.
    pub mem_read_fraction: f64,
    /// Disk access sizes, bytes (absent if the class touches no disk).
    pub disk_size: Option<Empirical>,
    /// Disk read fraction.
    pub disk_read_fraction: f64,
    /// Per-phase durations, nanoseconds, aligned with the signature.
    pub phase_durations: Vec<Empirical>,
}

impl ClassModel {
    fn fit(signature: ClassSignature, members: &[&RequestObservation], total: usize) -> Result<Self> {
        let collect = |f: &dyn Fn(&RequestObservation) -> f64| -> Vec<f64> {
            members.iter().map(|o| f(o)).collect()
        };
        let net_in = Empirical::from_sample(&collect(&|o| o.network_in_bytes as f64))?;
        let net_out = Empirical::from_sample(&collect(&|o| o.network_out_bytes as f64))?;
        let cpu_busy = Empirical::from_sample(&collect(&|o| o.cpu_busy_nanos as f64))?;
        let mem_sizes: Vec<f64> = members
            .iter()
            .flat_map(|o| o.memory.iter().map(|m| m.1 as f64))
            .collect();
        let mem_reads = members
            .iter()
            .flat_map(|o| o.memory.iter())
            .filter(|m| m.2 == IoOp::Read)
            .count();
        let disk_sizes: Vec<f64> = members
            .iter()
            .flat_map(|o| o.storage.iter().map(|s| s.1 as f64))
            .collect();
        let disk_reads = members
            .iter()
            .flat_map(|o| o.storage.iter())
            .filter(|s| s.2 == IoOp::Read)
            .count();
        let n_phases = signature.0.len();
        let mut phase_durations = Vec::with_capacity(n_phases);
        for p in 0..n_phases {
            let durations: Vec<f64> = members
                .iter()
                .filter_map(|o| o.phase_durations_nanos.get(p).map(|&d| d as f64))
                .collect();
            phase_durations.push(Empirical::from_sample(&durations)?);
        }
        Ok(ClassModel {
            signature,
            probability: members.len() as f64 / total as f64,
            net_in,
            net_out,
            cpu_busy,
            mem_read_fraction: if mem_sizes.is_empty() {
                0.0
            } else {
                mem_reads as f64 / mem_sizes.len() as f64
            },
            mem_size: if mem_sizes.is_empty() {
                None
            } else {
                Some(Empirical::from_sample(&mem_sizes)?)
            },
            disk_read_fraction: if disk_sizes.is_empty() {
                0.0
            } else {
                disk_reads as f64 / disk_sizes.len() as f64
            },
            disk_size: if disk_sizes.is_empty() {
                None
            } else {
                Some(Empirical::from_sample(&disk_sizes)?)
            },
            phase_durations,
        })
    }

    /// Number of CPU phases in the signature.
    pub fn cpu_phase_count(&self) -> usize {
        self.signature.0.iter().filter(|p| p.starts_with("cpu")).count()
    }
}

/// The trained structure queue: request classes with probabilities and
/// class-conditional features.
#[derive(Debug)]
pub struct StructureModel {
    classes: Vec<ClassModel>,
}

impl StructureModel {
    /// Trains from per-request observations.
    ///
    /// # Errors
    ///
    /// Errors if no observations are given.
    pub fn fit(observations: &[RequestObservation]) -> Result<Self> {
        if observations.is_empty() {
            return Err(ModelError::InsufficientRequests { needed: 1, got: 0 });
        }
        let groups = group_by_class(observations);
        let total = observations.len();
        let classes: Result<Vec<ClassModel>> = groups
            .into_iter()
            .map(|(sig, members)| ClassModel::fit(sig, &members, total))
            .collect();
        Ok(StructureModel { classes: classes? })
    }

    /// The trained classes, most frequent first.
    pub fn classes(&self) -> &[ClassModel] {
        &self.classes
    }

    /// The most frequent class (the application's dominant structure).
    pub fn dominant(&self) -> &ClassModel {
        &self.classes[0]
    }

    /// Samples a class according to the observed frequencies.
    pub fn sample_class(&self, rng: &mut Rng64) -> &ClassModel {
        let weights: Vec<f64> = self.classes.iter().map(|c| c.probability).collect();
        &self.classes[rng.choose_weighted(&weights)]
    }

    /// Free-parameter count: class probabilities plus the per-class
    /// distinct feature values.
    pub fn parameter_count(&self) -> usize {
        let mut count = self.classes.len();
        for c in &self.classes {
            count += c.signature.0.len(); // the sequence itself
            count += 3; // net_in, net_out, cpu means (empirical summaries)
            count += c.mem_size.is_some() as usize + c.disk_size.is_some() as usize;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::assemble_observations;
    use kooza_stats::dist::Distribution;
    use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};

    fn observations(mix: WorkloadMix, n: u64, seed: u64) -> Vec<RequestObservation> {
        let mut config = ClusterConfig::small();
        config.workload = mix;
        let trace = Cluster::new(&config).unwrap().run(n, seed).trace;
        assemble_observations(&trace).unwrap()
    }

    #[test]
    fn probabilities_sum_to_one() {
        let obs = observations(WorkloadMix::mixed(), 800, 31);
        let s = StructureModel::fit(&obs).unwrap();
        let total: f64 = s.classes().iter().map(|c| c.probability).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(!s.classes().is_empty());
    }

    #[test]
    fn dominant_class_matches_workload() {
        // Pure 64 KB reads over a cold working set: the dominant class is
        // the full Figure-1 read pipeline.
        let mix = WorkloadMix { n_chunks: 100_000, zipf_skew: 0.5, ..WorkloadMix::read_heavy() };
        let obs = observations(mix, 400, 32);
        let s = StructureModel::fit(&obs).unwrap();
        let dom = s.dominant();
        assert!(dom.probability > 0.9, "p = {}", dom.probability);
        assert_eq!(
            dom.signature.0,
            vec!["network.in", "cpu.lookup", "memory.r", "disk.r", "cpu.aggregate", "network.out"]
        );
        assert_eq!(dom.cpu_phase_count(), 2);
        assert!(dom.disk_size.is_some());
        assert!(dom.mem_size.is_some());
    }

    #[test]
    fn class_conditional_features_are_correlated() {
        // Mixed workload: read classes carry 64 KB, write classes 1 MB —
        // the joint structure in-breadth models lose.
        let obs = observations(WorkloadMix::mixed(), 1000, 33);
        let s = StructureModel::fit(&obs).unwrap();
        for c in s.classes() {
            let is_write = c.disk_read_fraction < 0.5 && c.disk_size.is_some();
            if is_write && c.probability > 0.05 {
                assert!(c.net_in.mean() > 500_000.0, "write class net {}", c.net_in.mean());
            }
            if c.disk_read_fraction > 0.5 && c.probability > 0.05 {
                assert!(c.net_in.mean() < 100_000.0, "read class net {}", c.net_in.mean());
            }
        }
    }

    #[test]
    fn sampling_respects_frequencies() {
        let mix = WorkloadMix { n_chunks: 30, ..WorkloadMix::read_heavy() };
        let obs = observations(mix, 1000, 34);
        let s = StructureModel::fit(&obs).unwrap();
        let mut rng = Rng64::new(35);
        let mut counts = vec![0usize; s.classes().len()];
        for _ in 0..5000 {
            let c = s.sample_class(&mut rng);
            let idx = s
                .classes()
                .iter()
                .position(|k| k.signature == c.signature)
                .unwrap();
            counts[idx] += 1;
        }
        for (i, c) in s.classes().iter().enumerate() {
            let observed = counts[i] as f64 / 5000.0;
            assert!(
                (observed - c.probability).abs() < 0.05,
                "class {i}: {} vs {}",
                observed,
                c.probability
            );
        }
    }

    #[test]
    fn phase_durations_align_with_signature() {
        let obs = observations(WorkloadMix::read_heavy(), 300, 36);
        let s = StructureModel::fit(&obs).unwrap();
        for c in s.classes() {
            assert_eq!(c.phase_durations.len(), c.signature.0.len());
            for d in &c.phase_durations {
                assert!(d.mean() > 0.0);
            }
        }
    }

    #[test]
    fn empty_observations_error() {
        assert!(StructureModel::fit(&[]).is_err());
    }

    #[test]
    fn parameter_count_grows_with_classes() {
        let one_class = observations(
            WorkloadMix { n_chunks: 100_000, zipf_skew: 0.5, ..WorkloadMix::read_heavy() },
            300,
            37,
        );
        let many_class = observations(WorkloadMix::mixed(), 800, 38);
        let s1 = StructureModel::fit(&one_class).unwrap();
        let s2 = StructureModel::fit(&many_class).unwrap();
        assert!(s2.parameter_count() > s1.parameter_count());
    }
}
