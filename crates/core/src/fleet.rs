//! Multi-server modeling: one KOOZA instance per chunkserver.
//!
//! §4: "Scaling to multiple servers in order to simulate real-application
//! scenarios requires multiple instances of the model." A [`KoozaFleet`]
//! trains one [`Kooza`] per server from the per-server trace split the GFS
//! simulator provides, and generates per-server synthetic streams — the
//! unit of large-scale DC simulation §5 argues for.

use kooza_sim::rng::Rng64;
use kooza_trace::TraceSet;

use crate::kooza::Kooza;
use crate::{ModelError, Result, SyntheticRequest, WorkloadModel};

/// One trained model per server.
#[derive(Debug)]
pub struct KoozaFleet {
    servers: Vec<Kooza>,
}

impl KoozaFleet {
    /// Trains one model per server trace.
    ///
    /// Every server must have a trainable trace; a server that saw no
    /// requests is a configuration problem the caller should see, not
    /// silently drop.
    ///
    /// # Errors
    ///
    /// Propagates the first per-server training failure, or errors on an
    /// empty fleet.
    pub fn fit(per_server_traces: &[TraceSet]) -> Result<Self> {
        if per_server_traces.is_empty() {
            return Err(ModelError::InsufficientRequests { needed: 1, got: 0 });
        }
        let servers: Result<Vec<Kooza>> = per_server_traces.iter().map(Kooza::fit).collect();
        Ok(KoozaFleet { servers: servers? })
    }

    /// Number of per-server models.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the fleet is empty (never true for a fitted fleet).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The model for one server.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn server(&self, server: usize) -> &Kooza {
        &self.servers[server]
    }

    /// Iterates over the per-server models.
    pub fn iter(&self) -> impl Iterator<Item = &Kooza> {
        self.servers.iter()
    }

    /// Total trained parameters across the fleet — the paper's scalability
    /// column: per-server models grow linearly in server count, not with
    /// cross-server state.
    pub fn parameter_count(&self) -> usize {
        self.servers.iter().map(|m| m.parameter_count()).sum()
    }

    /// Generates an independent synthetic stream per server (each server's
    /// arrival process and request mix is its own).
    pub fn generate_per_server(
        &self,
        n_per_server: usize,
        rng: &mut Rng64,
    ) -> Vec<Vec<SyntheticRequest>> {
        self.servers
            .iter()
            .map(|m| {
                let mut child = rng.fork();
                m.generate(n_per_server, &mut child)
            })
            .collect()
    }

    /// Aggregate fleet arrival rate (sum of per-server rates), req/s.
    pub fn aggregate_rate(&self) -> f64 {
        self.servers.iter().map(|m| m.network().mean_rate()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};

    fn multi_server_outcome() -> kooza_gfs::ClusterOutcome {
        let mut config = ClusterConfig::cluster(3);
        config.workload = WorkloadMix {
            read_fraction: 1.0,
            mean_interarrival_secs: 0.01,
            n_chunks: 4000,
            zipf_skew: 0.8,
            ..WorkloadMix::read_heavy()
        };
        Cluster::new(config).unwrap().run(3000, 2200)
    }

    #[test]
    fn per_server_traces_partition_the_cluster_trace() {
        let outcome = multi_server_outcome();
        assert_eq!(outcome.per_server_traces.len(), 3);
        let total_net: usize = outcome.per_server_traces.iter().map(|t| t.network.len()).sum();
        assert_eq!(total_net, outcome.trace.network.len());
        let total_cpu: usize = outcome.per_server_traces.iter().map(|t| t.cpu.len()).sum();
        assert_eq!(total_cpu, outcome.trace.cpu.len());
        // Reads spread across replicas: every server served a share.
        for t in &outcome.per_server_traces {
            assert!(t.cpu.len() > 300, "server saw only {} requests", t.cpu.len());
        }
    }

    #[test]
    fn fleet_trains_and_generates() {
        let outcome = multi_server_outcome();
        let fleet = KoozaFleet::fit(&outcome.per_server_traces).unwrap();
        assert_eq!(fleet.len(), 3);
        assert!(!fleet.is_empty());
        let mut rng = Rng64::new(1);
        let streams = fleet.generate_per_server(200, &mut rng);
        assert_eq!(streams.len(), 3);
        for stream in &streams {
            assert_eq!(stream.len(), 200);
        }
        assert!(fleet.parameter_count() > 3 * 1000);
    }

    #[test]
    fn aggregate_rate_matches_cluster_rate() {
        let outcome = multi_server_outcome();
        let fleet = KoozaFleet::fit(&outcome.per_server_traces).unwrap();
        // Cluster offered 100 req/s; per-server models should sum back.
        let agg = fleet.aggregate_rate();
        assert!((agg - 100.0).abs() < 12.0, "aggregate rate {agg}");
    }

    #[test]
    fn per_server_models_reflect_per_server_load() {
        let outcome = multi_server_outcome();
        let fleet = KoozaFleet::fit(&outcome.per_server_traces).unwrap();
        for (i, model) in fleet.iter().enumerate() {
            let rate = model.network().mean_rate();
            // 3-way-replicated reads split roughly evenly.
            assert!((15.0..60.0).contains(&rate), "server {i} rate {rate}");
        }
    }

    #[test]
    fn empty_fleet_rejected() {
        assert!(KoozaFleet::fit(&[]).is_err());
        // A server with an empty trace fails loudly.
        let outcome = multi_server_outcome();
        let mut traces = outcome.per_server_traces;
        traces.push(TraceSet::new());
        assert!(KoozaFleet::fit(&traces).is_err());
    }
}
