//! Compact serializer, byte-compatible with the serde_json wire format.

use crate::Json;

/// Serializes a value to a compact JSON string.
///
/// Matches `serde_json::to_string` byte-for-byte on this workspace's
/// corpus: no whitespace, object fields in insertion order, shortest
/// round-trip floats with a trailing `.0` when integral, non-finite floats
/// as `null`, and `\u00xx` escapes for control characters.
pub fn to_string(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Json) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::U64(n) => {
            let mut buf = [0u8; 20];
            out.push_str(format_u64(*n, &mut buf));
        }
        Json::I64(n) => {
            out.push_str(&n.to_string());
        }
        Json::F64(x) => write_f64(out, *x),
        Json::Str(s) => write_string(out, s),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// Formats a `u64` without allocating.
fn format_u64(mut n: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ASCII")
}

/// Shortest round-trip float formatting, matching ryu/serde_json on the
/// ranges this workspace produces: `Display` already emits the shortest
/// decimal that parses back exactly; integral values additionally get a
/// `.0` suffix (`1` → `1.0`) as ryu does. Non-finite values serialize as
/// `null`, serde_json's behavior.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    {
        use std::fmt::Write;
        write!(out, "{x}").expect("writing to a String cannot fail");
    }
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\u{08}' => out.push_str("\\b"),
            '\u{09}' => out.push_str("\\t"),
            '\u{0A}' => out.push_str("\\n"),
            '\u{0C}' => out.push_str("\\f"),
            '\u{0D}' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(to_string(&Json::Null), "null");
        assert_eq!(to_string(&Json::Bool(true)), "true");
        assert_eq!(to_string(&Json::Bool(false)), "false");
        assert_eq!(to_string(&Json::U64(0)), "0");
        assert_eq!(to_string(&Json::U64(u64::MAX)), "18446744073709551615");
        assert_eq!(to_string(&Json::I64(-42)), "-42");
    }

    #[test]
    fn floats_match_serde_json_format() {
        assert_eq!(to_string(&Json::F64(0.25)), "0.25");
        assert_eq!(to_string(&Json::F64(0.1)), "0.1");
        assert_eq!(to_string(&Json::F64(1.0)), "1.0");
        assert_eq!(to_string(&Json::F64(0.0)), "0.0");
        assert_eq!(to_string(&Json::F64(-0.0)), "-0.0");
        assert_eq!(to_string(&Json::F64(-2.5)), "-2.5");
        assert_eq!(to_string(&Json::F64(1.0 / 3.0)), "0.3333333333333333");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(to_string(&Json::F64(f64::NAN)), "null");
        assert_eq!(to_string(&Json::F64(f64::INFINITY)), "null");
        assert_eq!(to_string(&Json::F64(f64::NEG_INFINITY)), "null");
    }

    #[test]
    fn string_escapes() {
        assert_eq!(to_string(&Json::str("plain")), r#""plain""#);
        assert_eq!(to_string(&Json::str("a\"b\\c")), r#""a\"b\\c""#);
        assert_eq!(to_string(&Json::str("\n\t\r\u{08}\u{0C}")), r#""\n\t\r\b\f""#);
        assert_eq!(to_string(&Json::str("\u{1b}")), "\"\\u001b\"");
        // Non-ASCII passes through raw, as serde_json does by default.
        assert_eq!(to_string(&Json::str("héllo")), "\"héllo\"");
    }

    #[test]
    fn containers_compact_in_order() {
        let v = Json::Array(vec![Json::U64(1), Json::Null, Json::str("x")]);
        assert_eq!(to_string(&v), r#"[1,null,"x"]"#);
        let v = Json::Object(vec![
            ("b".into(), Json::U64(2)),
            ("a".into(), Json::Array(vec![])),
        ]);
        assert_eq!(to_string(&v), r#"{"b":2,"a":[]}"#);
        assert_eq!(to_string(&Json::Object(vec![])), "{}");
    }
}
