//! Minimal in-repo micro-benchmark harness (criterion replacement).
//!
//! The workspace builds fully offline, so the benchmarks cannot depend on
//! an external harness. This module provides the small slice of criterion
//! we actually use: named benchmark functions, a warmup phase, repeated
//! timed samples, and median/p95 reporting, plus machine-readable JSON.
//!
//! Modes:
//! - `cargo bench` passes `--bench` to the binary → full mode
//!   (measured samples sized for stable medians).
//! - `cargo test --benches` passes `--test`, and a bare run passes
//!   nothing → quick smoke mode (1 warmup + 3 samples) so the benchmarks
//!   double as cheap integration tests.
//! - `--mode smoke|full` picks the mode explicitly, overriding the flags
//!   cargo passes (`kooza_bench --mode smoke` in CI, for example).
//! - `KOOZA_BENCH_FULL=1` forces full mode regardless of flags.
//! - `KOOZA_BENCH_JSON=<path>` additionally writes the results as a JSON
//!   array to `<path>`.
//! - `--baseline <json>` loads a previously archived BENCH_*.json report
//!   and, after the run, prints per-bench speedup ratios against it
//!   (baseline median / current median) with a regression flag; the diff
//!   is also embedded in the JSON report.
//! - `KOOZA_BENCH_TOLERANCE=<f64>` loosens/tightens the regression
//!   threshold for the `--baseline` diff (default `0.95`; smoke gates
//!   use e.g. `0.5`).
//!
//! A positional (non-flag) command-line argument acts as a substring
//! filter on benchmark names, matching cargo's usual filtering UX.

use std::time::Instant;

use kooza_json::{Json, ToJson};

/// One benchmark's measured timings, in nanoseconds per sample.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name as passed to [`Harness::bench_function`].
    pub name: String,
    /// Number of measured samples (excluding warmup).
    pub samples: usize,
    /// Fastest sample.
    pub min_nanos: f64,
    /// Median sample.
    pub median_nanos: f64,
    /// 95th-percentile sample.
    pub p95_nanos: f64,
    /// Mean over samples.
    pub mean_nanos: f64,
    /// Bytes processed per iteration, for throughput benches
    /// ([`Harness::bench_throughput`]); `None` for plain timing benches.
    pub bytes: Option<u64>,
}

impl BenchResult {
    /// Median throughput in MB/s (decimal megabytes), if this is a
    /// throughput benchmark.
    pub fn mb_per_sec(&self) -> Option<f64> {
        let bytes = self.bytes?;
        if self.median_nanos <= 0.0 {
            return None;
        }
        // bytes/ns → MB/s: multiply by 1e9 (ns→s), divide by 1e6 (B→MB).
        Some(bytes as f64 * 1_000.0 / self.median_nanos)
    }
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("samples".into(), Json::U64(self.samples as u64)),
            ("min_nanos".into(), Json::F64(self.min_nanos)),
            ("median_nanos".into(), Json::F64(self.median_nanos)),
            ("p95_nanos".into(), Json::F64(self.p95_nanos)),
            ("mean_nanos".into(), Json::F64(self.mean_nanos)),
        ];
        if let Some(bytes) = self.bytes {
            fields.push(("bytes".into(), Json::U64(bytes)));
            fields.push((
                "mb_per_sec".into(),
                self.mb_per_sec().map(Json::F64).unwrap_or(Json::Null),
            ));
        }
        Json::Object(fields)
    }
}

/// A benchmark slower than `baseline / REGRESSION_TOLERANCE` counts as a
/// regression: 5% slack absorbs ordinary same-host timer noise.
///
/// `KOOZA_BENCH_TOLERANCE=<f64>` overrides it per run. Smoke-mode gates
/// (few samples diffed against an archived full-mode median, e.g. the
/// `scripts/verify.sh` simcore gate) set a loose value like `0.5`: a
/// coarse tripwire that still catches a hot path going 2x slower
/// without flaking on 3-sample medians.
const REGRESSION_TOLERANCE: f64 = 0.95;

/// The effective regression tolerance for this run (see
/// [`REGRESSION_TOLERANCE`]).
fn regression_tolerance() -> f64 {
    std::env::var("KOOZA_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t > 0.0)
        .unwrap_or(REGRESSION_TOLERANCE)
}

/// One benchmark compared against a `--baseline` report.
#[derive(Debug, Clone)]
pub struct BaselineDiff {
    /// Benchmark name present in both reports.
    pub name: String,
    /// Median from the baseline report, nanoseconds.
    pub baseline_median_nanos: f64,
    /// Median from this run, nanoseconds.
    pub median_nanos: f64,
    /// `baseline / current`: above 1.0 means this run is faster.
    pub speedup: f64,
    /// Whether this run is slower than the baseline beyond the tolerance.
    pub regression: bool,
}

impl ToJson for BaselineDiff {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("baseline_median_nanos".into(), Json::F64(self.baseline_median_nanos)),
            ("median_nanos".into(), Json::F64(self.median_nanos)),
            ("speedup".into(), Json::F64(self.speedup)),
            ("regression".into(), Json::Bool(self.regression)),
        ])
    }
}

/// Collects and runs benchmarks; create with [`Harness::from_args`].
pub struct Harness {
    full: bool,
    filter: Option<String>,
    /// `(path, name → baseline median ns)` from `--baseline`, if given.
    baseline: Option<(String, Vec<(String, f64)>)>,
    /// Shard count the cluster benches ran with, stamped into `meta`.
    shards: Option<u64>,
    /// Network topology the cluster benches ran with (`--topology`
    /// syntax, e.g. `rack:4:2`), stamped into `meta`.
    topology: Option<String>,
    /// Free-form `notes` appended to the JSON report: derived,
    /// deterministic measurements (simulated completion curves, sweep
    /// tables) that wall-clock samples cannot express.
    notes: Vec<(String, Json)>,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Builds a harness from the process arguments (see module docs for
    /// the flags cargo passes) and the `KOOZA_BENCH_*` environment.
    pub fn from_args() -> Self {
        let mut saw_bench = false;
        let mut saw_test = false;
        let mut explicit_mode: Option<bool> = None;
        let mut filter = None;
        let mut baseline_path: Option<String> = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => saw_bench = true,
                "--test" => saw_test = true,
                "--mode" => {
                    let mode = args.next().unwrap_or_default();
                    explicit_mode = Some(match mode.as_str() {
                        "full" => true,
                        "smoke" | "quick" => false,
                        other => panic!("--mode expects smoke|full, got {other:?}"),
                    });
                }
                "--baseline" => {
                    baseline_path =
                        Some(args.next().unwrap_or_else(|| panic!("--baseline expects a path")));
                }
                a if a.starts_with('-') => {} // ignore unknown flags (e.g. --nocapture)
                a => filter = Some(a.to_string()),
            }
        }
        // `--test` wins over `--bench` whatever the order: cargo appends
        // `--bench` to bench-target invocations, so `cargo bench -- --test`
        // sees both and should still smoke-run. An explicit `--mode` beats
        // both cargo flags.
        let mut full = explicit_mode.unwrap_or(saw_bench && !saw_test);
        if std::env::var("KOOZA_BENCH_FULL").map(|v| v == "1").unwrap_or(false) {
            full = true;
        }
        let baseline = baseline_path.map(|path| {
            let medians = load_baseline(&path)
                .unwrap_or_else(|e| panic!("loading --baseline {path}: {e}"));
            (path, medians)
        });
        Harness {
            full,
            filter,
            baseline,
            shards: None,
            topology: None,
            notes: Vec::new(),
            results: Vec::new(),
        }
    }

    /// Whether this run is in full (measured) mode rather than smoke
    /// mode — benches use it to size their inputs (e.g. the million-
    /// request cluster runs shrink to a few thousand requests in smoke).
    pub fn is_full(&self) -> bool {
        self.full
    }

    /// Stamps the shard count the cluster benches ran with into the JSON
    /// report's `meta` object, next to the cores/threads/samples stamps —
    /// archived BENCH_*.json files must say what sharding they measured.
    pub fn set_shards(&mut self, shards: u64) {
        self.shards = Some(shards);
    }

    /// Stamps the network topology the cluster benches ran with into the
    /// JSON report's `meta` object, in `--topology` syntax (`none`,
    /// `rack:4:2`, ...) — archived BENCH_*.json files must say which
    /// fabric they measured.
    pub fn set_topology(&mut self, topology: &str) {
        self.topology = Some(topology.to_string());
    }

    /// Attaches a named JSON value to the report's `notes` object —
    /// for deterministic derived measurements (e.g. a simulated incast
    /// completion-time curve) that belong next to the wall-clock samples
    /// in an archived BENCH_*.json.
    pub fn note(&mut self, key: &str, value: Json) {
        self.notes.push((key.to_string(), value));
    }

    /// Number of warmup iterations before measurement starts.
    fn warmup_iters(&self) -> usize {
        if self.full { 10 } else { 1 }
    }

    /// Number of measured samples.
    fn sample_count(&self) -> usize {
        if self.full { 30 } else { 3 }
    }

    /// Runs one named benchmark. The closure receives a [`Bencher`] and
    /// must call [`Bencher::iter`] or [`Bencher::iter_batched`] exactly
    /// once, mirroring criterion's `bench_function` contract.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        self.run_bench(name, None, f);
    }

    /// Like [`Harness::bench_function`], but tags the result with the
    /// number of bytes each iteration processes, so the report carries a
    /// derived MB/s figure (the unit ingest benches are compared in).
    pub fn bench_throughput(&mut self, name: &str, bytes: u64, f: impl FnOnce(&mut Bencher)) {
        self.run_bench(name, Some(bytes), f);
    }

    fn run_bench(&mut self, name: &str, bytes: Option<u64>, f: impl FnOnce(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            warmup: self.warmup_iters(),
            samples: self.sample_count(),
            durations: Vec::new(),
        };
        f(&mut b);
        assert!(
            !b.durations.is_empty(),
            "benchmark {name} never called iter()/iter_batched()"
        );
        let mut sorted = b.durations.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let median_nanos = sorted[n / 2] as f64;
        let p95_nanos = sorted[((n as f64 * 0.95) as usize).min(n - 1)] as f64;
        let mean_nanos = sorted.iter().sum::<u64>() as f64 / n as f64;
        let result = BenchResult {
            name: name.to_string(),
            samples: n,
            min_nanos: sorted[0] as f64,
            median_nanos,
            p95_nanos,
            mean_nanos,
            bytes,
        };
        let throughput = result
            .mb_per_sec()
            .map(|mbps| format!("  {mbps:>8.1} MB/s"))
            .unwrap_or_default();
        println!(
            "{:<32} median {:>14}  p95 {:>14}  ({} samples){throughput}",
            result.name,
            fmt_nanos(result.median_nanos),
            fmt_nanos(result.p95_nanos),
            result.samples
        );
        self.results.push(result);
    }

    /// Speedup of each benchmark present in both this run and the
    /// `--baseline` report, in this run's execution order.
    fn baseline_diffs(&self) -> Vec<BaselineDiff> {
        let Some((_, medians)) = &self.baseline else { return Vec::new() };
        self.results
            .iter()
            .filter_map(|r| {
                let (_, baseline_median_nanos) =
                    medians.iter().find(|(name, _)| *name == r.name)?;
                let speedup = if r.median_nanos > 0.0 {
                    baseline_median_nanos / r.median_nanos
                } else {
                    f64::INFINITY
                };
                Some(BaselineDiff {
                    name: r.name.clone(),
                    baseline_median_nanos: *baseline_median_nanos,
                    median_nanos: r.median_nanos,
                    speedup,
                    regression: speedup < regression_tolerance(),
                })
            })
            .collect()
    }

    /// The full JSON report: a `meta` stamp describing the machine and
    /// run configuration (so archived BENCH_*.json files are comparable),
    /// plus the per-benchmark `results` array.
    fn report_json(&self) -> Json {
        let detected_cores =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as u64;
        let total_samples: u64 = self.results.iter().map(|r| r.samples as u64).sum();
        let meta = Json::Object(vec![
            ("mode".into(), Json::str(if self.full { "full" } else { "quick" })),
            ("detected_cores".into(), Json::U64(detected_cores)),
            ("resolved_threads".into(), Json::U64(kooza_exec::resolved_threads() as u64)),
            ("warmup_iters".into(), Json::U64(self.warmup_iters() as u64)),
            ("samples_per_bench".into(), Json::U64(self.sample_count() as u64)),
            ("total_samples".into(), Json::U64(total_samples)),
        ]);
        let meta = match (self.shards, meta) {
            (Some(shards), Json::Object(mut fields)) => {
                fields.push(("shards".into(), Json::U64(shards)));
                Json::Object(fields)
            }
            (_, meta) => meta,
        };
        let meta = match (&self.topology, meta) {
            (Some(topology), Json::Object(mut fields)) => {
                fields.push(("topology".into(), Json::str(topology.clone())));
                Json::Object(fields)
            }
            (_, meta) => meta,
        };
        let mut report = vec![
            ("meta".into(), meta),
            (
                "results".into(),
                Json::Array(self.results.iter().map(ToJson::to_json).collect()),
            ),
        ];
        if !self.notes.is_empty() {
            report.push(("notes".into(), Json::Object(self.notes.clone())));
        }
        if let Some((path, _)) = &self.baseline {
            let diffs = self.baseline_diffs();
            report.push((
                "baseline".into(),
                Json::Object(vec![
                    ("path".into(), Json::str(path.clone())),
                    ("diffs".into(), Json::Array(diffs.iter().map(ToJson::to_json).collect())),
                ]),
            ));
        }
        Json::Object(report)
    }

    /// Prints the closing summary (and the `--baseline` diff, if any) and
    /// writes the JSON report if `KOOZA_BENCH_JSON` is set. Call once,
    /// after all benchmarks.
    pub fn finish(self) {
        let mode = if self.full { "full" } else { "quick" };
        println!(
            "\n{} benchmark(s) done ({mode} mode{})",
            self.results.len(),
            if self.full { "" } else { "; run `cargo bench` or set KOOZA_BENCH_FULL=1 for stable numbers" }
        );
        if let Some((path, _)) = &self.baseline {
            let diffs = self.baseline_diffs();
            println!("\nvs baseline {path}:");
            let mut regressions = 0usize;
            for d in &diffs {
                println!(
                    "{:<32} {:>14} -> {:>14}  {:>6.2}x{}",
                    d.name,
                    fmt_nanos(d.baseline_median_nanos),
                    fmt_nanos(d.median_nanos),
                    d.speedup,
                    if d.regression { "  REGRESSION" } else { "" }
                );
                regressions += usize::from(d.regression);
            }
            if diffs.is_empty() {
                println!("(no benchmark names in common with the baseline)");
            } else if regressions == 0 {
                println!("no regressions against the baseline");
            } else {
                println!("{regressions} regression(s) against the baseline");
            }
        }
        if let Ok(path) = std::env::var("KOOZA_BENCH_JSON") {
            std::fs::write(&path, kooza_json::to_string(&self.report_json()))
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("wrote JSON report to {path}");
        }
    }
}

/// Reads `name → median_nanos` pairs from an archived BENCH_*.json report
/// (either the full `{meta, results}` object or a bare results array).
fn load_baseline(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string());
    let json = kooza_json::parse(&text?).map_err(|e| e.to_string())?;
    let results = match json.get("results") {
        Some(r) => r,
        None => &json,
    };
    let array = results
        .as_array()
        .ok_or_else(|| "baseline has no results array".to_string())?;
    let mut medians = Vec::with_capacity(array.len());
    for entry in array {
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| "baseline result missing name".to_string())?;
        let median = entry
            .get("median_nanos")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("baseline result {name} missing median_nanos"))?;
        medians.push((name.to_string(), median));
    }
    Ok(medians)
}

/// Timing context handed to each benchmark body.
pub struct Bencher {
    warmup: usize,
    samples: usize,
    durations: Vec<u64>,
}

impl Bencher {
    /// Times `routine` once per sample, after the warmup runs. Keep any
    /// result observable with [`std::hint::black_box`] in the caller.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..self.warmup {
            std::hint::black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.durations.push(start.elapsed().as_nanos() as u64);
        }
    }

    /// Like [`Bencher::iter`], but rebuilds the input with `setup` before
    /// every run, outside the timed region — for routines that consume or
    /// mutate their input.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        for _ in 0..self.warmup {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.durations.push(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Human-readable duration with ns/µs/ms/s units.
fn fmt_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.0} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_one_duration_per_sample() {
        let mut b = Bencher { warmup: 2, samples: 5, durations: Vec::new() };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 7); // 2 warmup + 5 measured
        assert_eq!(b.durations.len(), 5);
    }

    #[test]
    fn iter_batched_reruns_setup_every_sample() {
        let mut b = Bencher { warmup: 1, samples: 4, durations: Vec::new() };
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |mut v| {
                v.push(2);
                v
            },
        );
        assert_eq!(setups, 5); // 1 warmup + 4 measured
        assert_eq!(b.durations.len(), 4);
    }

    #[test]
    fn fmt_nanos_picks_units() {
        assert_eq!(fmt_nanos(500.0), "500 ns");
        assert_eq!(fmt_nanos(1_500.0), "1.50 µs");
        assert_eq!(fmt_nanos(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_nanos(3_000_000_000.0), "3.00 s");
    }

    fn result(name: &str, median_nanos: f64) -> BenchResult {
        BenchResult {
            name: name.into(),
            samples: 30,
            min_nanos: median_nanos / 2.0,
            median_nanos,
            p95_nanos: median_nanos * 1.5,
            mean_nanos: median_nanos,
            bytes: None,
        }
    }

    #[test]
    fn report_json_carries_meta_stamp() {
        let harness = Harness {
            full: true,
            filter: None,
            baseline: None,
            shards: Some(4),
            topology: Some("rack:4:2".into()),
            notes: vec![("incast".into(), Json::U64(7))],
            results: vec![BenchResult {
                name: "demo".into(),
                samples: 30,
                min_nanos: 1.0,
                median_nanos: 2.0,
                p95_nanos: 3.0,
                mean_nanos: 2.0,
                bytes: None,
            }],
        };
        let json = harness.report_json();
        let meta = json.field("meta").unwrap();
        assert_eq!(meta.field("mode").unwrap().as_str(), Some("full"));
        assert!(meta.field("detected_cores").unwrap().as_f64().unwrap() >= 1.0);
        assert!(meta.field("resolved_threads").unwrap().as_f64().unwrap() >= 1.0);
        assert_eq!(meta.field("warmup_iters").unwrap().as_f64(), Some(10.0));
        assert_eq!(meta.field("samples_per_bench").unwrap().as_f64(), Some(30.0));
        assert_eq!(meta.field("total_samples").unwrap().as_f64(), Some(30.0));
        assert_eq!(meta.field("shards").unwrap().as_f64(), Some(4.0));
        assert_eq!(meta.field("topology").unwrap().as_str(), Some("rack:4:2"));
        let results = json.field("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 1);
        let notes = json.field("notes").unwrap();
        assert_eq!(notes.field("incast").unwrap().as_f64(), Some(7.0));
    }

    #[test]
    fn baseline_diffs_flag_regressions_with_tolerance() {
        let harness = Harness {
            full: true,
            filter: None,
            shards: None,
            topology: None,
            notes: vec![],
            baseline: Some((
                "old.json".into(),
                vec![
                    ("faster".into(), 2_000.0),
                    ("steady".into(), 1_000.0),
                    ("slower".into(), 1_000.0),
                    ("gone".into(), 5.0),
                ],
            )),
            results: vec![
                result("faster", 1_000.0),
                result("steady", 1_020.0),
                result("slower", 1_500.0),
                result("new_bench", 7.0),
            ],
        };
        let diffs = harness.baseline_diffs();
        // Diffs cover the intersection, in this run's order.
        let names: Vec<&str> = diffs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["faster", "steady", "slower"]);
        assert!((diffs[0].speedup - 2.0).abs() < 1e-12);
        assert!(!diffs[0].regression);
        // 2% slower sits inside the 5% noise tolerance.
        assert!(!diffs[1].regression, "speedup {}", diffs[1].speedup);
        // 50% slower is a regression.
        assert!(diffs[2].regression);
        let json = harness.report_json();
        let baseline = json.field("baseline").unwrap();
        assert_eq!(baseline.field("path").unwrap().as_str(), Some("old.json"));
        assert_eq!(baseline.field("diffs").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn load_baseline_reads_full_reports_and_bare_arrays() {
        let dir = std::env::temp_dir();
        let full = dir.join("kooza_bench_baseline_full_test.json");
        std::fs::write(
            &full,
            r#"{"meta":{"mode":"full"},"results":[{"name":"a","median_nanos":12.5}]}"#,
        )
        .unwrap();
        let medians = load_baseline(full.to_str().unwrap()).unwrap();
        assert_eq!(medians, vec![("a".to_string(), 12.5)]);
        let bare = dir.join("kooza_bench_baseline_bare_test.json");
        std::fs::write(&bare, r#"[{"name":"b","median_nanos":3}]"#).unwrap();
        let medians = load_baseline(bare.to_str().unwrap()).unwrap();
        assert_eq!(medians, vec![("b".to_string(), 3.0)]);
        assert!(load_baseline("/nonexistent/kooza.json").is_err());
        let _ = std::fs::remove_file(full);
        let _ = std::fs::remove_file(bare);
    }

    #[test]
    fn throughput_results_carry_mb_per_sec() {
        let r = BenchResult {
            name: "ingest".into(),
            samples: 3,
            min_nanos: 1_000.0,
            median_nanos: 2_000.0,
            p95_nanos: 3_000.0,
            mean_nanos: 2_000.0,
            bytes: Some(1_000_000),
        };
        // 1 MB per iteration at 2 µs median = 500k MB/s.
        assert_eq!(r.mb_per_sec(), Some(500_000.0));
        let s = kooza_json::to_string(&r.to_json());
        assert!(s.contains("\"bytes\":1000000"), "{s}");
        assert!(s.contains("\"mb_per_sec\":500000"), "{s}");

        // Plain timing benches neither compute nor serialize throughput.
        let plain = BenchResult { bytes: None, ..r };
        assert_eq!(plain.mb_per_sec(), None);
        let s = kooza_json::to_string(&plain.to_json());
        assert!(!s.contains("mb_per_sec"), "{s}");

        let mut h = Harness {
            full: false,
            filter: None,
            baseline: None,
            shards: None,
            topology: None,
            notes: vec![],
            results: vec![],
        };
        h.bench_throughput("tp", 4096, |b| b.iter(|| std::hint::black_box(1 + 1)));
        assert_eq!(h.results.len(), 1);
        assert_eq!(h.results[0].bytes, Some(4096));
    }

    #[test]
    fn results_serialize_to_json() {
        let r = BenchResult {
            name: "demo".into(),
            samples: 3,
            min_nanos: 1.0,
            median_nanos: 2.0,
            p95_nanos: 3.0,
            mean_nanos: 2.0,
            bytes: None,
        };
        let s = kooza_json::to_string(&r.to_json());
        assert!(s.starts_with("{\"name\":\"demo\",\"samples\":3,"), "{s}");
    }
}
