//! The [`Json`] value type.

use crate::JsonError;

/// A JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map) so that
/// serialization is deterministic and byte-stable: what the trace writer
/// emits is exactly the field order the `ToJson` impl chose. Numbers keep
/// three variants, mirroring `serde_json`'s internal representation, so
/// 64-bit integers (timestamps, ids) never pass through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`.
    U64(u64),
    /// A negative integer that fits `i64`.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::U64(n) => i64::try_from(*n).ok(),
            Json::I64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a required object field, with a conversion error naming the
    /// missing key — the workhorse of hand-written `FromJson` impls.
    ///
    /// # Errors
    ///
    /// Fails if `self` is not an object or lacks the key.
    pub fn field(&self, key: &str) -> crate::Result<&Json> {
        match self.as_object() {
            None => Err(JsonError::conversion(format!(
                "expected an object with field `{key}`, found {}",
                self.type_name()
            ))),
            Some(_) => self
                .get(key)
                .ok_or_else(|| JsonError::conversion(format!("missing field `{key}`"))),
        }
    }

    /// A short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "a boolean",
            Json::U64(_) | Json::I64(_) => "an integer",
            Json::F64(_) => "a number",
            Json::Str(_) => "a string",
            Json::Array(_) => "an array",
            Json::Object(_) => "an object",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert!(Json::Null.is_null());
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::U64(5).as_u64(), Some(5));
        assert_eq!(Json::U64(5).as_i64(), Some(5));
        assert_eq!(Json::I64(-5).as_i64(), Some(-5));
        assert_eq!(Json::I64(-5).as_u64(), None);
        assert_eq!(Json::U64(5).as_f64(), Some(5.0));
        assert_eq!(Json::F64(0.5).as_f64(), Some(0.5));
        assert_eq!(Json::str("x").as_str(), Some("x"));
        assert!(Json::F64(0.5).as_u64().is_none());
    }

    #[test]
    fn field_lookup_and_errors() {
        let obj = Json::Object(vec![("a".into(), Json::U64(1))]);
        assert_eq!(obj.get("a"), Some(&Json::U64(1)));
        assert_eq!(obj.get("b"), None);
        assert_eq!(obj.field("a").unwrap(), &Json::U64(1));
        let err = obj.field("b").unwrap_err();
        assert!(err.message.contains("missing field `b`"), "{}", err.message);
        let err = Json::U64(1).field("a").unwrap_err();
        assert!(err.message.contains("expected an object"), "{}", err.message);
    }

    #[test]
    fn u64_overflowing_i64_is_none() {
        assert_eq!(Json::U64(u64::MAX).as_i64(), None);
    }
}
