//! Fair-sharing flow-level network fabric over a rack/spine topology.
//!
//! The single-link [`crate::ServerPool`]-plus-fixed-service network model
//! cannot express shared-bandwidth effects: incast at a receiver, an
//! oversubscribed rack uplink throttling many senders at once, or
//! background re-replication traffic slowing client reads. This module
//! models the network as a *fluid* flow system instead:
//!
//! * **Topology.** `hosts` servers are packed into racks of
//!   `hosts_per_rack`; each host has a full-duplex access link of
//!   `host_bandwidth` bytes/sec to its top-of-rack switch, and each rack
//!   has a full-duplex uplink of `hosts_per_rack * host_bandwidth /
//!   oversubscription` to a non-blocking spine. Clients (and, in sharded
//!   runs, hosts owned by other shards) attach at the spine with
//!   uncapped access.
//! * **Flows.** A flow is a byte count moving along a fixed link path.
//!   It spends one propagation `latency` gated (consuming no bandwidth),
//!   then competes for bandwidth until its bytes drain.
//! * **Fairness.** Active flows share each link by max-min fairness,
//!   computed by progressive filling: repeatedly saturate the most
//!   contended link, freeze its flows at the fair share, and subtract.
//!   A lone flow therefore gets the full host bandwidth, reproducing the
//!   legacy fixed-service `latency + bytes/bandwidth` link exactly.
//! * **Determinism.** Rates are recomputed only at flow arrival, gate
//!   opening, completion and host failure. The algorithm visits links in
//!   index order and freezes whole links at a time (one multiply-subtract
//!   per link per round), so the resulting rates are independent of flow
//!   insertion order, and identical across platforms for identical flow
//!   sets.
//! * **Incrementality.** A flow event only disturbs the rates of flows
//!   that (transitively) share a link with the changed flow. The fabric
//!   keeps per-link active-flow sets and a dirty-link frontier: a
//!   re-rate closes the frontier over the flow↔link incidence graph and
//!   runs progressive filling on just that closure, falling back to the
//!   full pass when the closure covers every active flow. Because
//!   progressive filling decomposes exactly over connected components —
//!   a round on one component's links never reads or writes another's
//!   residuals — the restricted pass produces bit-identical rates to
//!   the full pass (see DESIGN.md §13 for the invariant).
//!
//! The fabric is event-loop agnostic: callers [`Fabric::advance`] it to
//! the current simulated time before any interaction, start flows, and
//! schedule their own wake-up at [`Fabric::next_change`].

use std::cell::Cell;

use crate::time::{SimDuration, SimTime};

/// Where a flow terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A client (or any off-fabric peer) attached at the spine with
    /// uncapped access bandwidth; the flow only crosses rack and host
    /// links on the host side of its path.
    Client,
    /// Host `0..hosts` inside the fabric.
    Host(usize),
}

/// One unidirectional link: a capacity plus its carried-byte integral.
#[derive(Debug, Clone)]
struct Link {
    /// Capacity in bytes per second.
    capacity: f64,
    /// Total bytes carried so far (integral of the aggregate rate).
    carried_bytes: f64,
    /// Simulated time this link spent saturated (aggregate rate at
    /// capacity, within rounding).
    busy: SimDuration,
}

/// The longest path in the topology: host up, rack up, rack down, host
/// down for a cross-rack flow.
const MAX_PATH: usize = 4;

/// A link path stored inline — every route crosses at most [`MAX_PATH`]
/// links, so flows carry their path without a heap allocation.
#[derive(Debug, Clone, Copy)]
struct Path {
    links: [u32; MAX_PATH],
    len: u8,
}

impl Path {
    const EMPTY: Path = Path { links: [0; MAX_PATH], len: 0 };

    fn of(links: &[u32]) -> Path {
        let mut path = Path::EMPTY;
        for &l in links {
            path.links[path.len as usize] = l;
            path.len += 1;
        }
        path
    }

    fn as_slice(&self) -> &[u32] {
        &self.links[..self.len as usize]
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn contains(&self, link: u32) -> bool {
        self.as_slice().contains(&link)
    }
}

/// One flow in the fabric.
#[derive(Debug, Clone)]
struct Flow {
    /// Bytes still to transfer once past the gate.
    remaining: f64,
    /// Current max-min rate in bytes/sec; 0 while gated.
    rate: f64,
    /// Instant the flow finishes propagation and starts consuming
    /// bandwidth.
    gate: SimTime,
    /// Link indices the flow crosses (empty for loopback paths, which
    /// complete at the gate).
    links: Path,
    /// Whether the flow is past its gate and enrolled in the per-link
    /// active sets ([`Fabric::link_flows`]).
    active: bool,
}

/// A shared-bandwidth rack/spine network fabric (see module docs).
#[derive(Debug)]
pub struct Fabric {
    hosts: usize,
    hosts_per_rack: usize,
    racks: usize,
    latency: SimDuration,
    links: Vec<Link>,
    /// Flows as an id-sorted table. Ids are handed out monotonically, so
    /// insertion is a push and every sweep is in ascending-id (i.e.
    /// creation) order over contiguous memory — the sweeps (next-change
    /// scan, integration, gate/drain pass) dominate the hot path.
    flows: Vec<(u64, Flow)>,
    /// Active (past-gate, non-loopback) flow ids per link, ascending.
    link_flows: Vec<Vec<u64>>,
    /// Number of active flows (sum over components, not links).
    active_flows: usize,
    next_id: u64,
    /// Last instant the fluid state was integrated to.
    clock: SimTime,
    flows_started: u64,
    rerates: u64,
    /// Re-rate passes restricted to a dirty-frontier closure.
    incremental_rerates: u64,
    /// Simulated time during which at least one link was saturated.
    bottleneck_busy: SimDuration,
    /// Links whose active-flow set changed since the last re-rate; the
    /// seed (and, after closure, the result) of the frontier BFS.
    dirty_links: Vec<u32>,
    /// Dedup/visited marks for `dirty_links`; always all-false between
    /// re-rates.
    link_marked: Vec<bool>,
    /// Scratch for progressive filling: residual capacity per link.
    residual: Vec<f64>,
    /// Scratch: unfrozen active flows per link.
    live: Vec<u32>,
    /// Scratch: flows frozen this round per link.
    frozen: Vec<u32>,
    /// Scratch: aggregate rate per link during integration; all-zero
    /// between integrations so only touched links need resetting.
    scratch_load: Vec<f64>,
    /// Scratch: links that carried load in the current integration.
    touched: Vec<u32>,
    /// Memoized [`Fabric::next_change`] result, invalidated by anything
    /// that moves the clock or changes a flow, gate or rate. The driver
    /// loop asks for the next boundary, advances to it, and asks again —
    /// the cache collapses the back-to-back identical scans.
    next_cache: Cell<NextCache>,
    /// Scratch: links the current re-rate operates on, ascending.
    closure: Vec<u32>,
    /// Scratch: flows that completed in the current advance step.
    done_scratch: Vec<u64>,
    /// A `cancel_flow` burst is waiting on its shared deferred re-rate.
    pending_rerate: bool,
    /// Test escape hatch: run every re-rate as the canonical full pass.
    force_full: bool,
}

/// Memoization state for [`Fabric::next_change`].
#[derive(Debug, Clone, Copy)]
enum NextCache {
    /// The fluid state changed since the last scan.
    Stale,
    /// Scan result, valid until the next invalidation.
    Known(Option<SimTime>),
}

/// Aggregate rate at or above this fraction of capacity counts a link as
/// saturated for the busy counters.
const SATURATION: f64 = 0.999;

/// A flow is complete once fewer bytes remain than its rate moves in one
/// nanosecond (the clock granularity), with an absolute floor so stalled
/// dust cannot keep a flow alive.
fn drained(remaining: f64, rate: f64) -> bool {
    remaining <= rate * 1.5e-9 + 1e-6
}

impl Fabric {
    /// Builds a fabric of `hosts` servers in racks of `hosts_per_rack`,
    /// each host with `host_bandwidth` bytes/sec full-duplex access, rack
    /// uplinks oversubscribed by `oversubscription`, and per-flow
    /// propagation `latency`.
    ///
    /// # Panics
    ///
    /// Panics unless `hosts >= 1`, `hosts_per_rack >= 1`,
    /// `host_bandwidth` is finite and positive, and `oversubscription`
    /// lies in `[1, hosts_per_rack]` (so a lone flow is never throttled
    /// below its host link, keeping the single-flow case identical to
    /// the legacy fixed-service link).
    pub fn new(
        hosts: usize,
        hosts_per_rack: usize,
        oversubscription: f64,
        host_bandwidth: f64,
        latency: SimDuration,
    ) -> Fabric {
        assert!(hosts >= 1, "fabric needs at least one host");
        assert!(hosts_per_rack >= 1, "racks need at least one slot");
        assert!(
            host_bandwidth.is_finite() && host_bandwidth > 0.0,
            "host bandwidth must be finite and positive, got {host_bandwidth}"
        );
        assert!(
            (1.0..=hosts_per_rack as f64).contains(&oversubscription),
            "oversubscription must lie in [1, hosts_per_rack], got {oversubscription}"
        );
        let racks = hosts.div_ceil(hosts_per_rack);
        let rack_capacity = hosts_per_rack as f64 * host_bandwidth / oversubscription;
        let n_links = 2 * hosts + 2 * racks;
        let mut links = Vec::with_capacity(n_links);
        let link = |capacity: f64| Link { capacity, carried_bytes: 0.0, busy: SimDuration::ZERO };
        for _ in 0..2 * hosts {
            links.push(link(host_bandwidth));
        }
        for _ in 0..2 * racks {
            links.push(link(rack_capacity));
        }
        Fabric {
            hosts,
            hosts_per_rack,
            racks,
            latency,
            links,
            flows: Vec::new(),
            link_flows: vec![Vec::new(); n_links],
            active_flows: 0,
            next_id: 0,
            clock: SimTime::ZERO,
            flows_started: 0,
            rerates: 0,
            incremental_rerates: 0,
            bottleneck_busy: SimDuration::ZERO,
            dirty_links: Vec::new(),
            link_marked: vec![false; n_links],
            residual: vec![0.0; n_links],
            live: vec![0; n_links],
            frozen: vec![0; n_links],
            scratch_load: vec![0.0; n_links],
            touched: Vec::new(),
            next_cache: Cell::new(NextCache::Stale),
            closure: Vec::new(),
            done_scratch: Vec::new(),
            pending_rerate: false,
            force_full: false,
        }
    }

    /// Number of hosts in the fabric.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// Number of unidirectional links (host up/down, then rack up/down).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Flows started over the fabric's lifetime.
    pub fn flows_started(&self) -> u64 {
        self.flows_started
    }

    /// Number of max-min re-rate passes run so far.
    pub fn rerates(&self) -> u64 {
        self.rerates
    }

    /// Re-rate passes (a subset of [`Fabric::rerates`]) that were
    /// restricted to the dirty-frontier closure instead of running the
    /// full progressive-filling pass over every link.
    pub fn incremental_rerates(&self) -> u64 {
        self.incremental_rerates
    }

    /// Flows currently in the fabric (gated or transferring).
    pub fn in_flight(&self) -> usize {
        self.flows.len()
    }

    /// Total simulated time during which at least one link was saturated.
    pub fn bottleneck_busy(&self) -> SimDuration {
        self.bottleneck_busy
    }

    /// Current max-min rate of a flow in bytes/sec (0 while gated),
    /// or `None` for unknown/finished flows. Takes `&mut self` because a
    /// deferred re-rate from [`Fabric::cancel_flow`] may need to run
    /// first (see there).
    pub fn rate_of(&mut self, id: u64) -> Option<f64> {
        self.flush_rerate();
        let i = self.flows.binary_search_by_key(&id, |e| e.0).ok()?;
        Some(self.flows[i].1.rate)
    }

    /// Utilization of every link over `[0, end]`: carried bytes divided
    /// by capacity times elapsed time, clamped to `[0, 1]`.
    pub fn link_utilization(&self, end: SimTime) -> Vec<f64> {
        let secs = end.as_secs_f64();
        self.links
            .iter()
            .map(|l| {
                if secs <= 0.0 {
                    0.0
                } else {
                    (l.carried_bytes / (l.capacity * secs)).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    /// Forces every re-rate to run the canonical full progressive-filling
    /// pass, disabling the incremental frontier. Exists so property tests
    /// can lockstep the incremental path against the full algorithm; not
    /// meant for production use.
    #[doc(hidden)]
    pub fn set_force_full(&mut self, force: bool) {
        self.force_full = force;
    }

    fn rack_of(&self, host: usize) -> usize {
        host / self.hosts_per_rack
    }

    fn host_up(&self, host: usize) -> u32 {
        host as u32
    }

    fn host_down(&self, host: usize) -> u32 {
        (self.hosts + host) as u32
    }

    fn rack_up(&self, rack: usize) -> u32 {
        (2 * self.hosts + rack) as u32
    }

    fn rack_down(&self, rack: usize) -> u32 {
        (2 * self.hosts + self.racks + rack) as u32
    }

    /// The link path from `from` to `to`. Same-rack host pairs hairpin at
    /// the ToR (no rack uplink); client/spine peers only cross the host
    /// side's links; a host talking to itself crosses nothing.
    fn path(&self, from: Endpoint, to: Endpoint) -> Path {
        let check = |h: usize| {
            assert!(h < self.hosts, "endpoint host {h} out of range (hosts={})", self.hosts)
        };
        match (from, to) {
            (Endpoint::Client, Endpoint::Client) => Path::EMPTY,
            (Endpoint::Client, Endpoint::Host(b)) => {
                check(b);
                Path::of(&[self.rack_down(self.rack_of(b)), self.host_down(b)])
            }
            (Endpoint::Host(a), Endpoint::Client) => {
                check(a);
                Path::of(&[self.host_up(a), self.rack_up(self.rack_of(a))])
            }
            (Endpoint::Host(a), Endpoint::Host(b)) => {
                check(a);
                check(b);
                if a == b {
                    Path::EMPTY
                } else if self.rack_of(a) == self.rack_of(b) {
                    Path::of(&[self.host_up(a), self.host_down(b)])
                } else {
                    Path::of(&[
                        self.host_up(a),
                        self.rack_up(self.rack_of(a)),
                        self.rack_down(self.rack_of(b)),
                        self.host_down(b),
                    ])
                }
            }
        }
    }

    /// Starts a flow of `bytes` from `from` to `to` at the fabric's
    /// current clock and returns its id. Call [`Fabric::advance`] to the
    /// present first; the flow spends `latency` gated, then competes for
    /// bandwidth. Completion is reported by a later `advance`.
    pub fn start_flow(&mut self, from: Endpoint, to: Endpoint, bytes: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.flows_started += 1;
        let flow = Flow {
            remaining: bytes as f64,
            rate: 0.0,
            gate: self.clock + self.latency,
            links: self.path(from, to),
            active: false,
        };
        // Monotone ids keep the table sorted with a plain push.
        debug_assert!(self.flows.last().is_none_or(|&(last, _)| last < id));
        self.flows.push((id, flow));
        self.next_cache.set(NextCache::Stale);
        id
    }

    /// Removes a flow from the id-sorted table, preserving order.
    fn remove_flow(&mut self, id: u64) -> Option<Flow> {
        let i = self.flows.binary_search_by_key(&id, |e| e.0).ok()?;
        self.next_cache.set(NextCache::Stale);
        Some(self.flows.remove(i).1)
    }

    /// Cancels one in-flight flow (a timed-out transfer being restarted,
    /// for example). Returns `false` when the id is unknown or already
    /// complete. As with `start_flow`, callers must `advance` to the
    /// present first.
    ///
    /// The survivors' re-rate is deferred until the next rate read
    /// (`advance`, [`Fabric::next_change`], [`Fabric::rate_of`]): no
    /// fluid moves between a cancellation and the next advance, so a
    /// burst of cancels at one instant — a timeout storm restarting its
    /// transfers — shares a single re-rate pass instead of paying one
    /// per call, and the final rates are identical either way.
    pub fn cancel_flow(&mut self, id: u64) -> bool {
        let Some(flow) = self.remove_flow(id) else {
            return false;
        };
        self.retire(id, &flow);
        // Gated/loopback flows held no bandwidth; nothing to re-rate.
        self.pending_rerate |= flow.active;
        true
    }

    /// Runs the re-rate a [`Fabric::cancel_flow`] burst deferred, if any.
    fn flush_rerate(&mut self) {
        if self.pending_rerate {
            self.pending_rerate = false;
            self.recompute();
        }
    }

    /// Drops every flow whose path crosses `host`'s access links and
    /// re-rates the survivors. Returns the dropped flow ids in ascending
    /// order; the caller owns whatever bookkeeping was attached to them.
    pub fn fail_host(&mut self, host: usize) -> Vec<u64> {
        let up = self.host_up(host);
        let down = self.host_down(host);
        let dropped: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.links.contains(up) || f.links.contains(down))
            .map(|&(id, _)| id)
            .collect();
        for &id in &dropped {
            let flow = self.remove_flow(id).expect("dropped id is live");
            self.retire(id, &flow);
        }
        // Eager here (unlike `cancel_flow`): a single pass already covers
        // the whole failure, and it subsumes any deferred cancel burst.
        self.pending_rerate = false;
        self.recompute();
        dropped
    }

    /// The next instant the fluid state changes on its own: the earliest
    /// gate opening or estimated flow completion. `None` when the fabric
    /// is idle. Callers schedule their wake-up event here; any flow
    /// start/failure in between simply schedules a fresh (earlier)
    /// wake-up. Takes `&mut self` because a deferred re-rate from
    /// [`Fabric::cancel_flow`] may need to run first; the estimates must
    /// come from post-cancel rates.
    pub fn next_change(&mut self) -> Option<SimTime> {
        self.flush_rerate();
        if let NextCache::Known(next) = self.next_cache.get() {
            return next;
        }
        let mut next: Option<SimTime> = None;
        for (_, flow) in self.flows.iter() {
            let t = if flow.gate > self.clock {
                flow.gate
            } else if flow.links.is_empty() || drained(flow.remaining, flow.rate) {
                self.clock
            } else if flow.rate > 0.0 {
                // Round the finish estimate up and keep it strictly in
                // the future so every wake-up makes progress.
                let dt = SimDuration::from_secs_f64(flow.remaining / flow.rate)
                    .max(SimDuration::from_nanos(1));
                self.clock + dt
            } else {
                continue;
            };
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        self.next_cache.set(NextCache::Known(next));
        next
    }

    /// Integrates the fluid state forward to `now`, opening gates and
    /// draining flows at their max-min rates. Returns the ids of flows
    /// that completed in `(clock, now]`, in ascending order.
    ///
    /// Allocates the result vector; hot callers should prefer
    /// [`Fabric::advance_into`] with a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics if `now` is before a previous `advance` target — the
    /// simulated past is immutable, as with the event engine.
    pub fn advance(&mut self, now: SimTime) -> Vec<u64> {
        let mut completed = Vec::new();
        self.advance_into(now, &mut completed);
        completed
    }

    /// [`Fabric::advance`] into a caller-owned buffer: clears `completed`
    /// and fills it with the ids of flows that finished in `(clock, now]`
    /// in ascending order, allocating nothing in the steady state.
    ///
    /// # Panics
    ///
    /// As [`Fabric::advance`].
    pub fn advance_into(&mut self, now: SimTime, completed: &mut Vec<u64>) {
        assert!(now >= self.clock, "fabric cannot advance into the past");
        completed.clear();
        self.flush_rerate();
        loop {
            // Step to the earliest internal boundary, or to `now`.
            let target = match self.next_change() {
                Some(t) if t < now => t,
                _ => now,
            };
            let dt = target - self.clock;
            if dt > SimDuration::ZERO {
                self.integrate(dt.as_secs_f64(), dt);
                self.clock = target;
                self.next_cache.set(NextCache::Stale);
            }
            // One pass over the flows: open gates that are due, enrolling
            // the flow in the per-link active sets, and collect drained
            // flows (and loopback flows, which complete at their gate).
            //
            // While the pass finds nothing (`clean`), it also folds the
            // [`Fabric::next_change`] scan into the same sweep — the
            // estimates are only valid if no rate is about to change, so
            // the first activation or drain discards them. Most steps end
            // on exactly such a do-nothing pass, and priming the memo
            // here is what lets the caller's follow-up `next_change` skip
            // its own scan.
            let mut activated = false;
            // Fold the estimate scan into the pass only when the memo is
            // stale — with `dt == 0` the scan at the top of this
            // iteration already cached the exact same values, and
            // recomputing them here would double the division work.
            let prime = matches!(self.next_cache.get(), NextCache::Stale);
            let mut clean = prime;
            let mut next_est: Option<SimTime> = None;
            let clock = self.clock;
            let link_flows = &mut self.link_flows;
            let link_marked = &mut self.link_marked;
            let dirty_links = &mut self.dirty_links;
            let done = &mut self.done_scratch;
            done.clear();
            for &mut (id, ref mut flow) in self.flows.iter_mut() {
                if flow.gate > clock {
                    if clean {
                        let t = flow.gate;
                        next_est = Some(next_est.map_or(t, |n| n.min(t)));
                    }
                    continue;
                }
                if flow.links.is_empty() || drained(flow.remaining, flow.rate) {
                    done.push(id);
                    clean = false;
                } else if !flow.active {
                    flow.active = true;
                    self.active_flows += 1;
                    activated = true;
                    clean = false;
                    for &l in flow.links.as_slice() {
                        let set = &mut link_flows[l as usize];
                        if let Err(pos) = set.binary_search(&id) {
                            set.insert(pos, id);
                        }
                        if !link_marked[l as usize] {
                            link_marked[l as usize] = true;
                            dirty_links.push(l);
                        }
                    }
                } else if clean && flow.rate > 0.0 {
                    // Same estimate `next_change` would compute at this
                    // clock: finish time rounded up, strictly future.
                    let dt = SimDuration::from_secs_f64(flow.remaining / flow.rate)
                        .max(SimDuration::from_nanos(1));
                    let t = clock + dt;
                    next_est = Some(next_est.map_or(t, |n| n.min(t)));
                }
            }
            // Complete drained flows; ascending order per step, so the
            // overall report is chronological then ascending.
            let done = std::mem::take(&mut self.done_scratch);
            let changed = !done.is_empty();
            for &id in &done {
                let flow = self.remove_flow(id).expect("drained flow is live");
                self.retire(id, &flow);
            }
            completed.extend_from_slice(&done);
            self.done_scratch = done;
            if activated || changed {
                self.recompute();
            } else {
                // Nothing moved in this pass: if the memo was stale, the
                // fused scan above saw the final state at this clock, so
                // its result is exactly what the next `next_change` call
                // would recompute. If it was already fresh, keep it.
                if prime {
                    self.next_cache.set(NextCache::Known(next_est));
                }
                if target == now {
                    break;
                }
            }
        }
    }

    /// Moves `dt_secs` of fluid at the current rates and accrues the
    /// per-link carried-byte integrals and saturation counters.
    fn integrate(&mut self, dt_secs: f64, dt: SimDuration) {
        // Aggregate rate per link, summed in flow-id order (the order is
        // deterministic; the sums only feed monotone counters). The
        // remaining-byte decrement rides in the same pass — it reads
        // only per-flow state. `scratch_load` is all-zero on entry, so a
        // link's first contribution records it in `touched` and only
        // those links need the counter update and the reset — unloaded
        // links would see `+= 0.0` and can be skipped wholesale.
        let load = &mut self.scratch_load;
        let touched = &mut self.touched;
        let clock = self.clock;
        for &mut (_, ref mut flow) in self.flows.iter_mut() {
            if flow.rate > 0.0 && flow.gate <= clock {
                for &l in flow.links.as_slice() {
                    if load[l as usize] == 0.0 {
                        touched.push(l);
                    }
                    load[l as usize] += flow.rate;
                }
                flow.remaining = (flow.remaining - flow.rate * dt_secs).max(0.0);
            }
        }
        let mut saturated = false;
        for &l in touched.iter() {
            let l = l as usize;
            let rate = load[l];
            let link = &mut self.links[l];
            link.carried_bytes += rate * dt_secs;
            if rate >= SATURATION * link.capacity {
                link.busy += dt;
                saturated = true;
            }
            load[l] = 0.0;
        }
        touched.clear();
        if saturated {
            self.bottleneck_busy += dt;
        }
    }

    /// Unregisters a removed flow from the per-link active sets and marks
    /// its links dirty. No-op for gated/loopback flows, which never held
    /// bandwidth — removing one cannot change any survivor's rate.
    fn retire(&mut self, id: u64, flow: &Flow) {
        if !flow.active {
            return;
        }
        self.active_flows -= 1;
        for &l in flow.links.as_slice() {
            let set = &mut self.link_flows[l as usize];
            if let Ok(pos) = set.binary_search(&id) {
                set.remove(pos);
            }
            if !self.link_marked[l as usize] {
                self.link_marked[l as usize] = true;
                self.dirty_links.push(l);
            }
        }
    }

    /// Recomputes max-min fair rates by progressive filling, restricted
    /// to the connected closure of the dirty links. Insertion-order
    /// invariant: each round freezes all flows of the bottleneck link at
    /// one shared value and subtracts that value once per link
    /// (`share * frozen_count`), so no result depends on the order flows
    /// were added. Flows outside the closure keep their rates — max-min
    /// fairness decomposes over connected components of the flow↔link
    /// graph, and every component the change touched is inside the
    /// closure, so those rates are already exact (and bit-identical to
    /// what the full pass would assign; the property suite locksteps the
    /// two under random churn).
    fn recompute(&mut self) {
        if self.dirty_links.is_empty() {
            // No active-set change since the last pass: every rate is
            // already correct, skip the (idempotent) recompute entirely.
            return;
        }
        self.rerates += 1;
        self.next_cache.set(NextCache::Stale);
        // Close the frontier: layered BFS over the flow↔link incidence
        // graph seeded at the dirty links. Each round sweeps the flow
        // table once and marks every active flow adjacent to a marked
        // link (`rate < 0` doubles as the "affected, not yet frozen"
        // mark for the filling loop below); rounds repeat until no new
        // link gets marked. Sweeping beats per-id lookups: the table is
        // contiguous and the adjacency test is four array loads, and the
        // loop stops early once every active flow is affected (the
        // common case — one saturated link touches everything).
        let mut affected = 0usize;
        let link_marked = &mut self.link_marked;
        let dirty_links = &mut self.dirty_links;
        let mut frontier_grew = true;
        while frontier_grew && affected < self.active_flows {
            frontier_grew = false;
            for &mut (_, ref mut flow) in self.flows.iter_mut() {
                if flow.active
                    && flow.rate >= 0.0
                    && flow.links.as_slice().iter().any(|&l| link_marked[l as usize])
                {
                    flow.rate = -1.0;
                    affected += 1;
                    for &l2 in flow.links.as_slice() {
                        if !link_marked[l2 as usize] {
                            link_marked[l2 as usize] = true;
                            dirty_links.push(l2);
                            frontier_grew = true;
                        }
                    }
                }
            }
        }
        for &l in &self.dirty_links {
            self.link_marked[l as usize] = false;
        }
        self.closure.clear();
        let affected = if self.force_full {
            // Test escape hatch: run the canonical full pass over all
            // active flows regardless of what the frontier closed over.
            // Links with no active flows are skipped — the bottleneck
            // scan ignores them (`live == 0`) and no flow accounts
            // against them, so dropping them changes nothing but the
            // scan cost.
            let link_flows = &self.link_flows;
            self.closure.extend(
                (0..self.links.len() as u32).filter(|&l| !link_flows[l as usize].is_empty()),
            );
            for &mut (_, ref mut flow) in self.flows.iter_mut() {
                if flow.active {
                    flow.rate = -1.0;
                }
            }
            self.active_flows
        } else {
            // The marked set doubles as the closure — the BFS already
            // reset every affected flow's rate and marked each of its
            // links, so when the frontier closed over everything this IS
            // the full pass: every link carrying an active flow is
            // marked. (Seed links whose last flow was just retired may
            // ride along empty; the bottleneck scan skips them.)
            if affected < self.active_flows {
                self.incremental_rerates += 1;
            }
            std::mem::swap(&mut self.closure, &mut self.dirty_links);
            // Ascending link order preserves the full pass's
            // lowest-index tie-break within the closure.
            self.closure.sort_unstable();
            affected
        };
        self.dirty_links.clear();
        self.fill(affected);
        debug_assert!(
            self.flows.iter().all(|(_, f)| f.rate >= 0.0),
            "progressive filling left a flow unrated"
        );
    }

    /// Progressive filling over `self.closure` (ascending link indices)
    /// of the `affected` flows carrying `rate < 0`; every link in the
    /// closure carries only affected flows.
    fn fill(&mut self, affected: usize) {
        for &l in &self.closure {
            let l = l as usize;
            self.residual[l] = self.links[l].capacity;
            self.live[l] = self.link_flows[l].len() as u32;
            self.frozen[l] = 0;
        }
        // Every round freezes at least one flow (the bottleneck has
        // `live > 0`), so counting down to zero skips the final
        // everything-is-frozen bottleneck scan a plain loop would run.
        let mut unfrozen = affected;
        while unfrozen > 0 {
            // Bottleneck: the live link with the smallest fair share,
            // lowest index on ties.
            let mut bottleneck: Option<(u32, f64)> = None;
            for &l in &self.closure {
                let li = l as usize;
                if self.live[li] == 0 {
                    continue;
                }
                let share = (self.residual[li] / self.live[li] as f64).max(0.0);
                match bottleneck {
                    Some((_, best)) if best <= share => {}
                    _ => bottleneck = Some((l, share)),
                }
            }
            let Some((bottleneck, share)) = bottleneck else { break };
            // Freeze by sweeping the flow table (contiguous, no per-id
            // lookups); freezing is a per-flow set operation, so the
            // sweep order does not affect the arithmetic.
            let frozen = &mut self.frozen;
            for &mut (_, ref mut flow) in self.flows.iter_mut() {
                if flow.rate < 0.0 && flow.links.contains(bottleneck) {
                    flow.rate = share;
                    unfrozen -= 1;
                    for &l in flow.links.as_slice() {
                        frozen[l as usize] += 1;
                    }
                }
            }
            for &l in &self.closure {
                let l = l as usize;
                if self.frozen[l] > 0 {
                    self.residual[l] = (self.residual[l] - share * self.frozen[l] as f64).max(0.0);
                    self.live[l] -= self.frozen[l];
                    self.frozen[l] = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BW: f64 = 125e6; // bytes/sec, matches the default LinkParams
    const LAT: SimDuration = SimDuration::from_micros(100);

    fn fabric(hosts: usize) -> Fabric {
        Fabric::new(hosts, 4, 2.0, BW, LAT)
    }

    /// Runs the fabric until `id` completes, returning the completion time.
    fn completion(fabric: &mut Fabric, id: u64) -> SimTime {
        for _ in 0..10_000 {
            let t = fabric.next_change().expect("fabric has pending work");
            if fabric.advance(t).contains(&id) {
                return t;
            }
        }
        panic!("flow {id} never completed");
    }

    #[test]
    fn single_flow_matches_fixed_service_link() {
        let mut f = fabric(8);
        let id = f.start_flow(Endpoint::Client, Endpoint::Host(3), 1_000_000);
        let done = completion(&mut f, id);
        let expected = LAT + SimDuration::from_secs_f64(1_000_000.0 / BW);
        let diff = done.as_nanos().abs_diff((SimTime::ZERO + expected).as_nanos());
        assert!(diff <= 2, "fabric {done} vs fixed link {expected}");
    }

    #[test]
    fn zero_byte_flow_completes_at_gate() {
        let mut f = fabric(4);
        let id = f.start_flow(Endpoint::Host(0), Endpoint::Client, 0);
        assert_eq!(completion(&mut f, id), SimTime::ZERO + LAT);
    }

    #[test]
    fn loopback_flow_completes_at_gate() {
        let mut f = fabric(4);
        let id = f.start_flow(Endpoint::Host(2), Endpoint::Host(2), 1 << 20);
        assert_eq!(completion(&mut f, id), SimTime::ZERO + LAT);
    }

    #[test]
    fn two_flows_into_one_host_halve_their_rates() {
        let mut f = fabric(8);
        let a = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1_000_000);
        let b = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1_000_000);
        // Step past both gates so rates are assigned.
        let gate = f.next_change().unwrap();
        f.advance(gate);
        assert!((f.rate_of(a).unwrap() - BW / 2.0).abs() < 1.0);
        assert!((f.rate_of(b).unwrap() - BW / 2.0).abs() < 1.0);
        // Service takes twice as long; both finish together.
        let done = completion(&mut f, b);
        let expected = LAT + SimDuration::from_secs_f64(2.0 * 1_000_000.0 / BW);
        let diff = done.as_nanos().abs_diff((SimTime::ZERO + expected).as_nanos());
        assert!(diff <= 4, "shared flows finished at {done}, expected {expected}");
    }

    #[test]
    fn oversubscribed_rack_uplink_throttles_egress() {
        // 4 hosts per rack at 2:1 oversubscription: rack uplink carries
        // 2*BW, so 4 concurrent egress flows get BW/2 each.
        let mut f = fabric(4);
        let ids: Vec<u64> = (0..4)
            .map(|h| f.start_flow(Endpoint::Host(h), Endpoint::Client, 1 << 20))
            .collect();
        let gate = f.next_change().unwrap();
        f.advance(gate);
        for id in ids {
            assert!((f.rate_of(id).unwrap() - BW / 2.0).abs() < 1.0);
        }
    }

    #[test]
    fn same_rack_traffic_skips_the_uplink() {
        // Host-to-host inside one rack hairpins at the ToR: even with
        // every pair talking, each flow keeps the full host bandwidth.
        let mut f = fabric(4);
        let a = f.start_flow(Endpoint::Host(0), Endpoint::Host(1), 1 << 20);
        let b = f.start_flow(Endpoint::Host(2), Endpoint::Host(3), 1 << 20);
        let gate = f.next_change().unwrap();
        f.advance(gate);
        assert!((f.rate_of(a).unwrap() - BW).abs() < 1.0);
        assert!((f.rate_of(b).unwrap() - BW).abs() < 1.0);
    }

    #[test]
    fn cross_rack_flow_spans_four_links_and_shares_fairly() {
        let mut f = fabric(8);
        // One cross-rack flow competing with an egress flow on the same
        // source host: the host uplink is the bottleneck, split evenly.
        let x = f.start_flow(Endpoint::Host(0), Endpoint::Host(5), 1 << 20);
        let e = f.start_flow(Endpoint::Host(0), Endpoint::Client, 1 << 20);
        let gate = f.next_change().unwrap();
        f.advance(gate);
        assert!((f.rate_of(x).unwrap() - BW / 2.0).abs() < 1.0);
        assert!((f.rate_of(e).unwrap() - BW / 2.0).abs() < 1.0);
    }

    #[test]
    fn rates_are_insertion_order_invariant() {
        // The same flow multiset started in two different orders must
        // produce bit-identical rates per (src, dst) pair.
        let spec: Vec<(Endpoint, Endpoint)> = vec![
            (Endpoint::Client, Endpoint::Host(0)),
            (Endpoint::Host(1), Endpoint::Client),
            (Endpoint::Host(0), Endpoint::Host(5)),
            (Endpoint::Host(4), Endpoint::Host(6)),
            (Endpoint::Host(1), Endpoint::Host(2)),
        ];
        let rates = |order: Vec<usize>| -> Vec<(usize, f64)> {
            let mut f = fabric(8);
            let mut ids = vec![0u64; spec.len()];
            for &i in &order {
                ids[i] = f.start_flow(spec[i].0, spec[i].1, 1 << 22);
            }
            let gate = f.next_change().unwrap();
            f.advance(gate);
            (0..spec.len()).map(|i| (i, f.rate_of(ids[i]).unwrap())).collect()
        };
        let forward = rates(vec![0, 1, 2, 3, 4]);
        let shuffled = rates(vec![3, 0, 4, 2, 1]);
        assert_eq!(forward, shuffled);
    }

    #[test]
    fn cancel_flow_releases_its_bandwidth() {
        let mut f = fabric(8);
        let a = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1 << 20);
        let b = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1 << 20);
        let gate = f.next_change().unwrap();
        f.advance(gate);
        assert!((f.rate_of(b).unwrap() - BW / 2.0).abs() < 1.0);
        assert!(f.cancel_flow(a));
        assert!(!f.cancel_flow(a), "double cancel must report unknown");
        assert!(f.rate_of(a).is_none());
        // The survivor is immediately re-rated to the full link.
        assert!((f.rate_of(b).unwrap() - BW).abs() < 1.0);
    }

    #[test]
    fn fail_host_drops_its_flows_and_rerates_survivors() {
        let mut f = fabric(8);
        let dead = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1 << 20);
        let cross = f.start_flow(Endpoint::Host(0), Endpoint::Host(5), 1 << 20);
        let alive = f.start_flow(Endpoint::Client, Endpoint::Host(1), 1 << 20);
        let shared = f.start_flow(Endpoint::Client, Endpoint::Host(1), 1 << 20);
        let gate = f.next_change().unwrap();
        f.advance(gate);
        assert!((f.rate_of(alive).unwrap() - BW / 2.0).abs() < 1.0);
        let dropped = f.fail_host(0);
        assert_eq!(dropped, vec![dead, cross]);
        assert!(f.rate_of(dead).is_none());
        // Survivors keep their (unchanged) host-limited share.
        assert!((f.rate_of(alive).unwrap() - BW / 2.0).abs() < 1.0);
        assert!((f.rate_of(shared).unwrap() - BW / 2.0).abs() < 1.0);
    }

    #[test]
    fn busy_counters_and_utilization_accrue() {
        let mut f = fabric(4);
        let id = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1_250_000);
        let end = completion(&mut f, id);
        assert!(f.bottleneck_busy() > SimDuration::ZERO, "a lone flow saturates its host link");
        let util = f.link_utilization(end);
        assert_eq!(util.len(), f.link_count());
        let down = f.host_down(0) as usize;
        assert!(util[down] > 0.5, "host downlink utilization {}", util[down]);
        assert!(util[f.host_up(1) as usize] == 0.0);
        assert_eq!(f.in_flight(), 0);
        assert_eq!(f.flows_started(), 1);
        assert!(f.rerates() >= 2);
    }

    #[test]
    fn coarse_and_fine_stepping_agree() {
        // Internal boundaries are handled inside `advance`, so stepping
        // the fabric in arbitrary increments completes the same flows no
        // later than one increment after the exact event-driven times.
        let build = || {
            let mut f = fabric(8);
            let a = f.start_flow(Endpoint::Client, Endpoint::Host(2), 3_000_000);
            let b = f.start_flow(Endpoint::Client, Endpoint::Host(2), 1_000_000);
            (f, a, b)
        };
        let (mut exact, a, _b) = build();
        let t_exact = completion(&mut exact, a);
        let (mut coarse, ..) = build();
        let step = SimDuration::from_micros(500);
        let mut t = SimTime::ZERO;
        let mut done = Vec::new();
        while done.len() < 2 {
            t += step;
            done.extend(coarse.advance(t));
        }
        assert!(t >= t_exact && (t - t_exact) <= step, "coarse {t}, exact {t_exact}");
        assert_eq!(coarse.in_flight(), 0);
    }

    #[test]
    fn disjoint_components_rerate_incrementally() {
        // Racks of 4: hosts 0-3 in rack 0, 4-7 in rack 1. Same-rack
        // traffic hairpins at the ToR, so the two racks are disconnected
        // components of the flow↔link graph.
        let mut f = fabric(8);
        let a = f.start_flow(Endpoint::Host(0), Endpoint::Host(1), 1 << 20);
        let b = f.start_flow(Endpoint::Host(0), Endpoint::Host(1), 1 << 20);
        let c = f.start_flow(Endpoint::Host(4), Endpoint::Host(5), 1 << 20);
        let gate = f.next_change().unwrap();
        f.advance(gate);
        let rate_c = f.rate_of(c).unwrap();
        let full_before = f.rerates() - f.incremental_rerates();
        f.cancel_flow(a);
        // Only the rack-0 component re-rates (the deferred pass runs at
        // the first rate read): the pass was incremental, the survivor
        // gets the whole host link back, and the rack-1 flow's rate is
        // untouched bit for bit.
        assert!((f.rate_of(b).unwrap() - BW).abs() < 1.0);
        assert_eq!(f.rerates() - f.incremental_rerates(), full_before);
        assert!(f.incremental_rerates() >= 1);
        assert_eq!(f.rate_of(c).unwrap().to_bits(), rate_c.to_bits());
    }

    #[test]
    fn cancelling_a_gated_flow_skips_the_rerate() {
        let mut f = fabric(8);
        let a = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1 << 20);
        let gate = f.next_change().unwrap();
        f.advance(gate);
        let rerates = f.rerates();
        // Still inside its latency gate: holds no bandwidth, so removing
        // it cannot change any rate and no pass runs.
        let gated = f.start_flow(Endpoint::Client, Endpoint::Host(1), 1 << 20);
        assert!(f.cancel_flow(gated));
        assert_eq!(f.rerates(), rerates);
        assert!((f.rate_of(a).unwrap() - BW).abs() < 1.0);
    }

    #[test]
    fn advance_into_reuses_the_buffer() {
        let mut f = fabric(4);
        let id = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1_000_000);
        let mut buf = vec![7, 8, 9];
        let gate = f.next_change().unwrap();
        f.advance_into(gate, &mut buf);
        assert!(buf.is_empty(), "buffer must be cleared even when nothing completes");
        for _ in 0..10_000 {
            let t = f.next_change().expect("flow still pending");
            f.advance_into(t, &mut buf);
            if !buf.is_empty() {
                assert_eq!(buf, vec![id]);
                return;
            }
        }
        panic!("flow never completed");
    }

    #[test]
    #[should_panic(expected = "oversubscription")]
    fn oversubscription_beyond_rack_width_rejected() {
        let _ = Fabric::new(8, 4, 8.0, BW, LAT);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_rejected() {
        let mut f = fabric(4);
        let _ = f.start_flow(Endpoint::Client, Endpoint::Host(9), 1);
    }
}
