//! Invariant tests for the GFS simulator across randomized
//! configurations, on the deterministic in-repo `kooza-check` harness.

use kooza_check::gen::{choice, u32_range, u64_range, zip2, zip5};
use kooza_check::{checker, ensure, ensure_eq};

use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};

/// Conservation and well-formedness across random workloads: every
/// request completes exactly once, record counts line up, span trees
/// are valid, and timestamps are within the makespan.
#[test]
fn conservation_and_wellformedness() {
    checker("conservation_and_wellformedness").cases(24).run(
        zip5(
            u64_range(0, 10_000),      // seed
            u32_range(0, 101),         // read_pct
            u64_range(1, 5_000),       // n_chunks
            u32_range(5, 15),          // zipf_x10
            choice(vec![1u32, 7, 50]), // sampling
        ),
        |&(seed, read_pct, n_chunks, zipf_x10, sampling)| {
            let n_requests = 300u64;
            let mut config = ClusterConfig::small();
            config.trace_sampling = sampling;
            config.workload = WorkloadMix {
                read_fraction: f64::from(read_pct) / 100.0,
                n_chunks,
                zipf_skew: f64::from(zipf_x10) / 10.0,
                // Keep load stable regardless of mix.
                mean_interarrival_secs: 0.1,
                ..WorkloadMix::mixed()
            };
            let mut cluster = Cluster::new(&config).unwrap();
            let outcome = cluster.run(n_requests, seed);

            // Conservation.
            ensure_eq!(outcome.stats.completed, n_requests);
            ensure_eq!(outcome.requests.len(), n_requests as usize);
            ensure_eq!(outcome.trace.cpu.len(), n_requests as usize);
            // One ingress + one egress per request.
            ensure_eq!(outcome.trace.network.len(), 2 * n_requests as usize);
            // Memory touched exactly once per request.
            ensure_eq!(outcome.trace.memory.len(), n_requests as usize);
            // Disk at most once per request (cache hits skip it).
            ensure!(outcome.trace.storage.len() <= n_requests as usize, "extra disk records");

            // Latencies positive; utilizations in range.
            for r in &outcome.requests {
                ensure!(r.latency_nanos > 0, "request with zero latency");
            }
            for u in outcome
                .stats
                .cpu_utilization
                .iter()
                .chain(&outcome.stats.disk_utilization)
            {
                ensure!((0.0..=1.0 + 1e-9).contains(u), "utilization {u}");
            }

            // Span trees valid and only for sampled requests.
            let sampled = outcome.requests.iter().filter(|r| r.sampled).count();
            let trees = outcome.trace.span_trees();
            ensure_eq!(trees.len(), sampled);
            let makespan_nanos = (outcome.stats.makespan_secs * 1e9) as u64 + 1;
            for tree in &trees {
                ensure!(tree.root().name == "request", "root span is {}", tree.root().name);
                ensure!(tree.root().end_nanos <= makespan_nanos, "span past makespan");
                let phases = tree.phase_sequence();
                ensure!(
                    phases.first().map(|p| *p == "network.in").unwrap_or(false),
                    "first phase {phases:?}"
                );
                ensure!(
                    phases.last().map(|p| *p == "network.out").unwrap_or(false),
                    "last phase {phases:?}"
                );
            }
            Ok(())
        },
    );
}

/// Replication factor never changes the number of completed requests
/// or loses trace records.
#[test]
fn replication_conserves_requests() {
    checker("replication_conserves_requests").cases(24).run(
        zip2(choice(vec![1usize, 2, 3]), u64_range(0, 1000)),
        |&(replication, seed)| {
            let mut config = ClusterConfig::cluster(3);
            config.replication = replication;
            config.workload = WorkloadMix::write_heavy();
            config.workload.mean_interarrival_secs = 0.3;
            let mut cluster = Cluster::new(&config).unwrap();
            let outcome = cluster.run(100, seed);
            ensure_eq!(outcome.stats.completed, 100);
            ensure_eq!(outcome.trace.storage.len(), 100); // primary writes only
            Ok(())
        },
    );
}
