//! Thread-count determinism regression: the Table-1 and Table-2 pipelines
//! must produce byte-identical kooza-json output whether the `kooza-exec`
//! pool runs 1, 2 or 8 workers.
//!
//! This is the contract DESIGN.md's "Execution layer" section states:
//! parallelism is an implementation detail — ordered reduction and
//! per-task RNG streams make every published number independent of the
//! thread count (and of the host's core count). `KOOZA_THREADS=1` takes
//! the exact serial code path, so this test also pins parallel == serial.

use kooza::class::assemble_observations;
use kooza::crossexam::cross_examine;
use kooza::validate::validate;
use kooza::{InBreadthModel, InDepthModel, Kooza, ReplayConfig, WorkloadModel};
use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};
use kooza_json::{to_string, Json};
use kooza_sim::rng::Rng64;

const SEED: u64 = 2011;

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Table 2: train KOOZA on two request classes, validate features and
/// latency. Mirrors `kooza-bench`'s `table2_validation` at test scale.
fn table2_json() -> Json {
    let cases = [("64k-read", WorkloadMix::read_heavy(), 600u64), (
        "4m-write",
        WorkloadMix::write_heavy(),
        300,
    )];
    let reports = kooza_exec::par_map(&cases, |(label, workload, n)| {
        let mut config = ClusterConfig::small();
        config.workload = *workload;
        let outcome = Cluster::new(&config).expect("config").run(*n, SEED);
        let observations = assemble_observations(&outcome.trace).expect("assembles");
        let model = Kooza::fit(&outcome.trace).expect("trains");
        let mut rng = Rng64::new(SEED + 1);
        let synthetic = model.generate(*n as usize, &mut rng);
        let report = validate(&model, &observations, &synthetic, ReplayConfig::from(&config));
        obj(vec![
            ("case", Json::str(*label)),
            (
                "rows",
                Json::Array(
                    report
                        .rows
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("subsystem", Json::str(r.subsystem)),
                                ("metric", Json::str(r.metric)),
                                ("original", Json::F64(r.original)),
                                ("synthetic", Json::F64(r.synthetic)),
                                ("variation", Json::F64(r.variation)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("max_feature_variation", Json::F64(report.max_feature_variation())),
            (
                "latency_variation",
                report.latency_variation().map(Json::F64).unwrap_or(Json::Null),
            ),
        ])
    });
    Json::Array(reports)
}

/// Table 1: cross-examine the three model families on a mixed workload.
fn table1_json() -> Json {
    let mut config = ClusterConfig::small();
    config.workload = WorkloadMix {
        n_chunks: 120,
        ..WorkloadMix::mixed()
    };
    let trace = Cluster::new(&config).expect("config").run(700, SEED).trace;
    let observations = assemble_observations(&trace).expect("assembles");
    let kooza = Kooza::fit(&trace).expect("kooza");
    let inb = InBreadthModel::fit(&trace).expect("in-breadth");
    let ind = InDepthModel::fit(&trace).expect("in-depth");
    let table = cross_examine(
        &[&inb, &ind, &kooza],
        &observations,
        ReplayConfig::from(&config),
        700,
        SEED + 2,
    );
    Json::Array(
        table
            .rows
            .iter()
            .map(|r| {
                obj(vec![
                    ("model", Json::str(r.model.clone())),
                    ("feature_error", Json::F64(r.feature_error)),
                    ("latency_ks", Json::F64(r.latency_ks)),
                    ("parameter_count", Json::U64(r.parameter_count as u64)),
                    ("features_check", Json::Bool(r.features_check())),
                    ("time_deps_check", Json::Bool(r.time_deps_check())),
                    ("completeness_check", Json::Bool(r.completeness_check())),
                ])
            })
            .collect(),
    )
}

fn pipeline_output() -> String {
    to_string(&obj(vec![("table2", table2_json()), ("table1", table1_json())]))
}

#[test]
fn tables_are_byte_identical_across_thread_counts() {
    // One #[test] drives all thread counts: the override is process-global
    // state, so sweeping it inside a single test keeps this binary free of
    // cross-test races.
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 8] {
        kooza_exec::set_thread_override(Some(threads));
        outputs.push((threads, pipeline_output()));
    }
    kooza_exec::set_thread_override(None);
    let (_, reference) = &outputs[0];
    assert!(reference.contains("table2") && reference.contains("latency_ks"));
    for (threads, output) in &outputs[1..] {
        assert_eq!(
            output, reference,
            "pipeline output at {threads} threads diverged from serial"
        );
    }
}
