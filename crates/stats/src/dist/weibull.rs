//! The Weibull distribution — flexible inter-arrival and lifetime model;
//! sub-exponential tails for shape < 1 make it a frequent best-fit for DC
//! job inter-arrivals.

use super::{assert_probability, require_positive, Distribution};
use crate::special::ln_gamma;
use crate::Result;

/// Weibull distribution with shape `k > 0` and scale `λ > 0`.
///
/// ```
/// use kooza_stats::dist::{Distribution, Weibull};
/// let d = Weibull::new(1.0, 2.0)?; // shape 1 == exponential with mean 2
/// assert!((d.mean() - 2.0).abs() < 1e-12);
/// # Ok::<(), kooza_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution with the given shape and scale.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StatsError::InvalidParameter`] unless both are
    /// finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        require_positive("shape", shape)?;
        require_positive("scale", scale)?;
        Ok(Weibull { shape, scale })
    }

    /// Shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter λ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    fn gamma_fn(x: f64) -> f64 {
        ln_gamma(x).exp()
    }
}

impl Distribution for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let (k, l) = (self.shape, self.scale);
        if x == 0.0 {
            // pdf(0) is 0 for k > 1, λ⁻¹ for k = 1, +inf for k < 1.
            return if k > 1.0 {
                0.0
            } else if (k - 1.0).abs() < 1e-12 {
                1.0 / l
            } else {
                f64::INFINITY
            };
        }
        (k / l) * (x / l).powf(k - 1.0) * (-(x / l).powf(k)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        assert!(p < 1.0, "weibull quantile undefined at p = 1");
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * Self::gamma_fn(1.0 + 1.0 / self.shape)
    }

    fn variance(&self) -> f64 {
        let g1 = Self::gamma_fn(1.0 + 1.0 / self.shape);
        let g2 = Self::gamma_fn(1.0 + 2.0 / self.shape);
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn name(&self) -> &'static str {
        "weibull"
    }

    fn log_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let (k, l) = (self.shape, self.scale);
        k.ln() - k * l.ln() + (k - 1.0) * x.ln() - (x / l).powf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kooza_sim::rng::Rng64;

    #[test]
    fn shape_one_is_exponential() {
        use crate::dist::Exponential;
        let w = Weibull::new(1.0, 2.0).unwrap();
        let e = Exponential::with_mean(2.0).unwrap();
        for x in [0.1, 0.5, 1.0, 3.0, 7.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12);
            assert!((w.pdf(x) - e.pdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_round_trip() {
        let d = Weibull::new(0.7, 3.0).unwrap();
        for p in [0.0, 0.2, 0.5, 0.9, 0.999] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn mean_formula_against_sampling() {
        let d = Weibull::new(2.0, 1.0).unwrap();
        // Mean = Γ(1.5) = √π/2 ≈ 0.886.
        assert!((d.mean() - 0.886_226_925_452_758).abs() < 1e-9);
        let mut rng = Rng64::new(44);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn pdf_at_zero_cases() {
        assert_eq!(Weibull::new(2.0, 1.0).unwrap().pdf(0.0), 0.0);
        assert_eq!(Weibull::new(1.0, 2.0).unwrap().pdf(0.0), 0.5);
        assert_eq!(Weibull::new(0.5, 1.0).unwrap().pdf(0.0), f64::INFINITY);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, -2.0).is_err());
    }

    #[test]
    fn log_pdf_consistency() {
        let d = Weibull::new(1.7, 2.2).unwrap();
        for x in [0.3, 1.0, 4.0] {
            assert!((d.log_pdf(x) - d.pdf(x).ln()).abs() < 1e-10);
        }
    }
}
