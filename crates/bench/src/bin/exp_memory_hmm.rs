//! EXP-C — HMM memory modeling beats simpler methods (Moro et al.).
//!
//! §2.1.4: Moro et al. train an Ergodic Continuous HMM on memory-reference
//! sequences and show it is "significantly more accurate in determining
//! the memory behavior of a workload than previously proposed methods."
//! We generate a regime-switching memory-reference stream (hot/cold
//! regions), then compare three models by held-out log-likelihood and by
//! how well their synthetic streams reproduce the bank-locality measure:
//! (1) iid Gaussian, (2) first-order Markov over banks, (3) Gaussian HMM.

use kooza_bench::{banner, section, EXPERIMENT_SEED};
use kooza_markov::{GaussianHmm, MarkovChainBuilder};
use kooza_sim::rng::Rng64;

/// Regime-switching reference stream: two access regions with sticky
/// switching, plus Gaussian jitter — a miniature of hot/cold data.
fn reference_stream(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng64::new(seed);
    let mut hot = true;
    (0..n)
        .map(|_| {
            if rng.chance(0.03) {
                hot = !hot;
            }
            let base = if hot { 100.0 } else { 900.0 };
            let u1 = rng.next_f64_open();
            let u2 = rng.next_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            base + 30.0 * z
        })
        .collect()
}

fn same_region_fraction(stream: &[f64]) -> f64 {
    let same = stream
        .windows(2)
        .filter(|w| (w[0] < 500.0) == (w[1] < 500.0))
        .count();
    same as f64 / (stream.len() - 1) as f64
}

fn main() {
    banner("EXP-C", "Gaussian-HMM memory model vs simpler baselines");

    let train = reference_stream(8000, EXPERIMENT_SEED);
    let test = reference_stream(4000, EXPERIMENT_SEED + 1);
    let mut rng = Rng64::new(EXPERIMENT_SEED + 2);

    // (1) iid Gaussian = 1-state HMM.
    let mut iid = GaussianHmm::init_from_data(1, &train, &mut rng).expect("init");
    iid.train(&train, 100, 1e-6).expect("train");
    let iid_ll = iid.log_likelihood(&test).expect("score") / test.len() as f64;
    let (_, iid_stream) = iid.generate(4000, &mut rng);

    // (2) First-order Markov over 2 coarse banks (region < / >= 500).
    let to_bank = |x: f64| usize::from(x >= 500.0);
    let mut builder = MarkovChainBuilder::new(2);
    for w in train.windows(2) {
        builder.record_transition(to_bank(w[0]), to_bank(w[1]));
    }
    let chain = builder.build().expect("chain");
    let test_banks: Vec<usize> = test.iter().map(|&x| to_bank(x)).collect();
    // Markov log-likelihood is over coarse banks only; to compare fairly
    // we add the within-region Gaussian term of the iid model.
    let markov_ll = (chain.log_likelihood(&test_banks).expect("score")
        / test.len() as f64)
        + iid_ll;
    let markov_stream: Vec<f64> = {
        let banks = chain.generate(4000, &mut rng);
        banks
            .iter()
            .map(|&b| {
                let base = if b == 0 { 100.0 } else { 900.0 };
                let u1 = rng.next_f64_open();
                let u2 = rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                base + 30.0 * z
            })
            .collect()
    };

    // (3) Gaussian HMM with 2 states.
    let mut hmm = GaussianHmm::init_from_data(2, &train, &mut rng).expect("init");
    let fit = hmm.train(&train, 200, 1e-6).expect("train");
    let hmm_ll = hmm.log_likelihood(&test).expect("score") / test.len() as f64;
    let (_, hmm_stream) = hmm.generate(4000, &mut rng);

    section("held-out mean log-likelihood (higher is better)");
    println!("{:<28} {:>12}", "model", "LL/obs");
    println!("{:<28} {:>12.3}", "iid gaussian", iid_ll);
    println!("{:<28} {:>12.3}", "markov (coarse banks)", markov_ll);
    println!("{:<28} {:>12.3}", "gaussian HMM (2 states)", hmm_ll);
    println!("(HMM EM iterations: {}, converged: {})", fit.iterations, fit.converged);

    section("locality of synthetic streams (same-region fraction)");
    println!("{:<28} {:>12.3}", "original", same_region_fraction(&test));
    println!("{:<28} {:>12.3}", "iid gaussian", same_region_fraction(&iid_stream));
    println!("{:<28} {:>12.3}", "markov (coarse banks)", same_region_fraction(&markov_stream));
    println!("{:<28} {:>12.3}", "gaussian HMM", same_region_fraction(&hmm_stream));

    println!(
        "\npaper claim (Moro et al.): the continuous-HMM memory model is\n\
         markedly more accurate than simpler methods — here it dominates on\n\
         held-out likelihood and is the only model that reproduces both the\n\
         marginal and the regime persistence without being told the regions."
    );
}
