//! Golden-fixture tests pinning the JSONL wire format.
//!
//! The fixture strings below are byte-for-byte what the serde-era
//! implementation (`serde_json` with `#[serde(tag = "kind")]`) emitted.
//! They must never change: traces written by older builds have to keep
//! parsing, and traces written by this build must be readable by external
//! tooling that learned the old format.

use kooza_trace::record::{CpuRecord, Direction, IoOp, MemoryRecord, NetworkRecord, StorageRecord};
use kooza_trace::span::{Span, SpanId, TraceId};
use kooza_trace::store::TraceSet;

/// The five line kinds, one golden line each, exactly as serde emitted.
const GOLDEN_STORAGE: &str =
    r#"{"kind":"Storage","ts_nanos":123,"lbn":456,"size":4096,"op":"Write","request_id":7}"#;
const GOLDEN_CPU: &str =
    r#"{"kind":"Cpu","ts_nanos":1,"utilization":0.25,"busy_nanos":500,"request_id":7}"#;
const GOLDEN_MEMORY: &str =
    r#"{"kind":"Memory","ts_nanos":2,"bank":3,"size":64,"op":"Read","request_id":7}"#;
const GOLDEN_NETWORK: &str =
    r#"{"kind":"Network","ts_nanos":3,"size":65536,"direction":"Ingress","request_id":7}"#;
const GOLDEN_SPAN: &str = r#"{"kind":"Span","trace_id":3,"span_id":1,"parent":0,"name":"disk","start_nanos":5,"end_nanos":9,"annotations":[[6,"seek"]]}"#;
const GOLDEN_ROOT_SPAN: &str = r#"{"kind":"Span","trace_id":3,"span_id":0,"parent":null,"name":"request","start_nanos":0,"end_nanos":10,"annotations":[]}"#;

fn fixture_set() -> TraceSet {
    let mut ts = TraceSet::new();
    ts.storage.push(StorageRecord {
        ts_nanos: 123,
        lbn: 456,
        size: 4096,
        op: IoOp::Write,
        request_id: 7,
    });
    ts.cpu.push(CpuRecord {
        ts_nanos: 1,
        utilization: 0.25,
        busy_nanos: 500,
        request_id: 7,
    });
    ts.memory.push(MemoryRecord {
        ts_nanos: 2,
        bank: 3,
        size: 64,
        op: IoOp::Read,
        request_id: 7,
    });
    ts.network.push(NetworkRecord {
        ts_nanos: 3,
        size: 65536,
        direction: Direction::Ingress,
        request_id: 7,
    });
    ts.spans.push(Span::new(TraceId(3), SpanId(0), None, "request", 0, 10));
    let mut span = Span::new(TraceId(3), SpanId(1), Some(SpanId(0)), "disk", 5, 9);
    span.annotate(6, "seek");
    ts.spans.push(span);
    ts
}

fn golden_corpus() -> String {
    [
        GOLDEN_STORAGE,
        GOLDEN_CPU,
        GOLDEN_MEMORY,
        GOLDEN_NETWORK,
        GOLDEN_ROOT_SPAN,
        GOLDEN_SPAN,
    ]
    .iter()
    .map(|l| format!("{l}\n"))
    .collect()
}

#[test]
fn writer_emits_exact_golden_bytes() {
    let mut buf = Vec::new();
    fixture_set().write_jsonl(&mut buf).unwrap();
    let written = String::from_utf8(buf).unwrap();
    assert_eq!(written, golden_corpus());
}

#[test]
fn reader_parses_golden_fixture_lines() {
    let ts = TraceSet::read_jsonl(golden_corpus().as_bytes()).unwrap();
    assert_eq!(ts, fixture_set());
}

#[test]
fn write_read_write_is_byte_identical() {
    let mut first = Vec::new();
    fixture_set().write_jsonl(&mut first).unwrap();
    let reread = TraceSet::read_jsonl(first.as_slice()).unwrap();
    let mut second = Vec::new();
    reread.write_jsonl(&mut second).unwrap();
    assert_eq!(first, second, "write → read → write must be a fixed point");
}

#[test]
fn unknown_kind_reports_line_number() {
    let data = format!("{GOLDEN_CPU}\n{{\"kind\":\"Gpu\",\"ts_nanos\":1}}\n");
    match TraceSet::read_jsonl(data.as_bytes()) {
        Err(kooza_trace::TraceError::Parse { line, message }) => {
            assert_eq!(line, 2);
            assert!(message.contains("unknown record kind `Gpu`"), "{message}");
        }
        other => panic!("expected a parse error, got {other:?}"),
    }
}
