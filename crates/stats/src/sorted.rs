//! Shared sorted-sample views for the goodness-of-fit hot path.
//!
//! Every KS/AD call clones and sorts its input, and the fitting pipeline
//! runs the one-sample KS test once per candidate family — so a seven-way
//! pipeline used to sort the same data seven times. [`SortedSample`] sorts
//! once; the `*_presorted` test variants in [`crate::ks`] and [`crate::ad`]
//! borrow it, turning the candidate loop into one sort plus O(k·n) scans.

use crate::{ensure_finite, ensure_len, Result};

/// An owned sample, validated (finite, non-empty) and sorted ascending.
///
/// The sort uses [`f64::total_cmp`], so construction never panics; NaN is
/// rejected up front as [`crate::StatsError::NonFiniteData`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedSample {
    values: Vec<f64>,
}

impl SortedSample {
    /// Validates and sorts a copy of `data`.
    ///
    /// # Errors
    ///
    /// Errors on empty input or non-finite values.
    ///
    /// ```
    /// use kooza_stats::sorted::SortedSample;
    ///
    /// let s = SortedSample::new(&[3.0, 1.0, 2.0])?;
    /// assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
    /// # Ok::<(), kooza_stats::StatsError>(())
    /// ```
    pub fn new(data: &[f64]) -> Result<Self> {
        ensure_len(data, 1)?;
        ensure_finite(data)?;
        Ok(Self::from_validated(data.to_vec()))
    }

    /// Sorts data the caller has already validated, skipping the checks.
    pub(crate) fn from_validated(mut values: Vec<f64>) -> Self {
        values.sort_by(f64::total_cmp);
        SortedSample { values }
    }

    /// The sample values, ascending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sample size (construction guarantees at least one point).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always `false`: empty input is rejected at construction.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Smallest value.
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Largest value.
    pub fn max(&self) -> f64 {
        self.values[self.values.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StatsError;

    #[test]
    fn sorts_and_exposes_extremes() {
        let s = SortedSample::new(&[5.0, -1.0, 3.0, 0.5]).unwrap();
        assert_eq!(s.values(), &[-1.0, 0.5, 3.0, 5.0]);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn rejects_empty_and_non_finite() {
        assert!(matches!(
            SortedSample::new(&[]),
            Err(StatsError::InsufficientData { needed: 1, got: 0 })
        ));
        assert_eq!(SortedSample::new(&[1.0, f64::NAN]), Err(StatsError::NonFiniteData));
        assert_eq!(SortedSample::new(&[f64::INFINITY]), Err(StatsError::NonFiniteData));
    }
}
