//! Cross-crate check that real simulator traces survive JSONL persistence
//! byte-identically — the full-corpus counterpart of the hand-built golden
//! fixtures in `crates/trace/tests/golden_jsonl.rs`.

use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};
use kooza_trace::TraceSet;

#[test]
fn simulator_traces_round_trip_byte_identically() {
    // A real trace from the GFS simulator (floats, sampling, hundreds of
    // spans) must be a fixed point of write → read → write.
    for (workload, seed) in [
        (WorkloadMix::mixed(), 7u64),
        (WorkloadMix::read_heavy(), 11),
        (WorkloadMix::write_heavy(), 13),
    ] {
        let mut config = ClusterConfig::small();
        config.workload = workload;
        let outcome = Cluster::new(&config).unwrap().run(200, seed);
        let mut first = Vec::new();
        outcome.trace.write_jsonl(&mut first).unwrap();
        let reread = TraceSet::read_jsonl(first.as_slice()).unwrap();
        assert_eq!(reread, outcome.trace);
        let mut second = Vec::new();
        reread.write_jsonl(&mut second).unwrap();
        assert_eq!(first, second);
    }
}
