//! Property-based tests for the statistics substrate.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;

use kooza_sim::rng::Rng64;
use kooza_stats::dist::{
    DiscreteDistribution, Distribution, Exponential, Gamma, Geometric, LogNormal, Normal, Pareto,
    Poisson, Uniform, Weibull, Zipf,
};
use kooza_stats::fit::{fit_exponential, fit_lognormal, fit_normal, fit_pareto};
use kooza_stats::histogram::{Histogram, VuList};
use kooza_stats::matrix::Matrix;
use kooza_stats::special::{gamma_p, gamma_q, ln_gamma, normal_cdf, normal_quantile};

proptest! {
    /// pdf is non-negative, cdf in [0,1], mean finite where defined.
    #[test]
    fn density_and_cdf_sanity(
        x in -100.0f64..100.0,
        rate in 0.01f64..100.0,
        shape in 0.2f64..5.0,
    ) {
        let dists: Vec<Box<dyn Distribution>> = vec![
            Box::new(Exponential::new(rate).unwrap()),
            Box::new(Normal::new(0.0, shape).unwrap()),
            Box::new(LogNormal::new(0.0, shape).unwrap()),
            Box::new(Weibull::new(shape, 1.0).unwrap()),
            Box::new(Gamma::new(shape, 1.0).unwrap()),
            Box::new(Uniform::new(-1.0, 1.0).unwrap()),
        ];
        for d in &dists {
            prop_assert!(d.pdf(x) >= 0.0, "{} pdf({x}) < 0", d.name());
            let c = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&c), "{} cdf({x}) = {c}", d.name());
        }
    }

    /// MLE fitting recovers parameters of the generating family within a
    /// sampling-noise tolerance.
    #[test]
    fn mle_recovers_parameters(seed in 0u64..500, rate in 0.2f64..20.0, sigma in 0.2f64..1.5) {
        let n = 4000;
        let mut rng = Rng64::new(seed);

        let d = Exponential::new(rate).unwrap();
        let data: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let fit = fit_exponential(&data).unwrap();
        prop_assert!((fit.rate() - rate).abs() / rate < 0.15, "rate {} vs {rate}", fit.rate());

        let d = LogNormal::new(1.0, sigma).unwrap();
        let data: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let fit = fit_lognormal(&data).unwrap();
        prop_assert!((fit.sigma() - sigma).abs() < 0.12, "sigma {} vs {sigma}", fit.sigma());

        let d = Normal::new(-2.0, sigma).unwrap();
        let data: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let fit = fit_normal(&data).unwrap();
        prop_assert!((fit.mu() + 2.0).abs() < 0.15);

        let alpha = 1.0 + sigma; // 1.2..2.5
        let d = Pareto::new(1.0, alpha).unwrap();
        let data: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let fit = fit_pareto(&data).unwrap();
        prop_assert!((fit.alpha() - alpha).abs() / alpha < 0.15, "alpha {}", fit.alpha());
    }

    /// Special-function identities hold across the domain.
    #[test]
    fn special_function_identities(a in 0.1f64..30.0, x in 0.0f64..60.0, p in 0.001f64..0.999) {
        prop_assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-10);
        // ln Γ satisfies the recurrence.
        prop_assert!((ln_gamma(a + 1.0) - a.ln() - ln_gamma(a)).abs() < 1e-8);
        // Φ and Φ⁻¹ invert.
        prop_assert!((normal_cdf(normal_quantile(p)) - p).abs() < 1e-8);
    }

    /// Discrete distributions: pmf sums to ~1 and samples stay in range.
    #[test]
    fn discrete_distributions_normalized(lambda in 0.5f64..20.0, n in 2u64..200, s in 0.3f64..2.0, gp in 0.05f64..0.95) {
        let poisson = Poisson::new(lambda).unwrap();
        let total: f64 = (0..300).map(|k| poisson.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);

        let zipf = Zipf::new(n, s).unwrap();
        let total: f64 = (1..=n).map(|k| zipf.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let mut rng = Rng64::new(n ^ 77);
        for _ in 0..20 {
            let k = zipf.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }

        let geom = Geometric::new(gp).unwrap();
        prop_assert!((geom.cdf(200) - 1.0).abs() < 1e-4 || gp < 0.06);
    }

    /// Histograms conserve counts.
    #[test]
    fn histogram_conserves_counts(data in proptest::collection::vec(-50.0f64..50.0, 1..300)) {
        let mut h = Histogram::new(-10.0, 10.0, 8).unwrap();
        for &x in &data {
            h.record(x);
        }
        let binned: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), data.len() as u64);
        prop_assert_eq!(h.total(), data.len() as u64);
    }

    /// VU-lists: everything recorded is countable and samples stay in range.
    #[test]
    fn vu_list_sampling_in_range(points in proptest::collection::vec((0.0f64..4.0, 0.0f64..2.0), 1..100), seed in 0u64..1000) {
        let mut vu = VuList::new(&[(0.0, 4.0, 8), (0.0, 2.0, 4)]).unwrap();
        for (a, b) in &points {
            vu.record(&[*a, *b]).unwrap();
        }
        prop_assert_eq!(vu.total(), points.len() as u64);
        let mut rng = Rng64::new(seed);
        let v = vu.sample(&mut rng).unwrap();
        prop_assert!((0.0..4.0).contains(&v[0]));
        prop_assert!((0.0..2.0).contains(&v[1]));
    }

    /// Matrix solve really solves.
    #[test]
    fn solve_verifies(
        diag in proptest::collection::vec(1.0f64..10.0, 2..6),
        rhs_seed in 0u64..100,
    ) {
        let n = diag.len();
        // Diagonally-dominant random-ish matrix: guaranteed solvable.
        let mut rng = Rng64::new(rhs_seed);
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let v = if i == j { diag[i] + n as f64 } else { rng.next_f64() };
                m.set(i, j, v);
            }
        }
        let b: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0 - 5.0).collect();
        let x = m.solve(&b).unwrap();
        let back = m.mul_vec(&x).unwrap();
        for (bi, yi) in b.iter().zip(&back) {
            prop_assert!((bi - yi).abs() < 1e-8);
        }
    }

    /// SVD reconstructs arbitrary small matrices.
    #[test]
    fn svd_reconstructs(
        vals in proptest::collection::vec(-5.0f64..5.0, 6..=6),
    ) {
        let a = Matrix::from_vec(3, 2, vals).unwrap();
        let (u, s, v) = a.svd().unwrap();
        for r in 0..3 {
            for c in 0..2 {
                let rebuilt: f64 = (0..s.len()).map(|k| u.get(r, k) * s[k] * v.get(c, k)).sum();
                prop_assert!((rebuilt - a.get(r, c)).abs() < 1e-7);
            }
        }
    }
}
