//! The empirical distribution — trace-driven resampling. This is what a
//! model *degenerates to* when no parametric family fits: SQS (Meisner et
//! al.) builds its online workload models exactly this way.

use kooza_sim::rng::Rng64;

use super::{assert_probability, Distribution};
use crate::{ensure_finite, ensure_len, Result};

/// Empirical distribution built from a sample (the ECDF).
///
/// `cdf` is the step ECDF; `quantile` is the inverse ECDF (type-1 quantile);
/// `sample` draws uniformly from the stored observations.
///
/// ```
/// use kooza_stats::dist::{Distribution, Empirical};
/// let d = Empirical::from_sample(&[1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(d.cdf(2.0), 0.5);
/// assert_eq!(d.quantile(0.5), 2.0);
/// # Ok::<(), kooza_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    sorted: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl Empirical {
    /// Builds the empirical distribution of `data`.
    ///
    /// # Errors
    ///
    /// Returns an error if `data` is empty or contains non-finite values.
    pub fn from_sample(data: &[f64]) -> Result<Self> {
        ensure_len(data, 1)?;
        ensure_finite(data)?;
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let variance = if sorted.len() < 2 {
            0.0
        } else {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        };
        Ok(Empirical { sorted, mean, variance })
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted observations.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }
}

impl Distribution for Empirical {
    /// The ECDF has no density; this returns a histogram-style estimate
    /// using 1 + log₂(n) bins (Sturges), adequate for likelihood ranking.
    fn pdf(&self, x: f64) -> f64 {
        let n = self.sorted.len();
        let lo = self.sorted[0];
        let hi = self.sorted[n - 1];
        if x < lo || x > hi {
            return 0.0;
        }
        if hi == lo {
            return f64::INFINITY;
        }
        let bins = (1.0 + (n as f64).log2()).ceil() as usize;
        let width = (hi - lo) / bins as f64;
        let idx = (((x - lo) / width) as usize).min(bins - 1);
        let (a, b) = (lo + idx as f64 * width, lo + (idx + 1) as f64 * width);
        let count = self
            .sorted
            .iter()
            .filter(|&&v| v >= a && (v < b || (idx == bins - 1 && v <= b)))
            .count();
        count as f64 / (n as f64 * width)
    }

    fn cdf(&self, x: f64) -> f64 {
        // Count of observations <= x, via partition point.
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        let n = self.sorted.len();
        if p == 0.0 {
            return self.sorted[0];
        }
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[idx - 1]
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn name(&self) -> &'static str {
        "empirical"
    }

    /// Resamples uniformly from the observations (bootstrap draw).
    fn sample(&self, rng: &mut Rng64) -> f64 {
        *rng.choose(&self.sorted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rejected() {
        assert!(Empirical::from_sample(&[]).is_err());
        assert!(Empirical::from_sample(&[f64::NAN]).is_err());
    }

    #[test]
    fn ecdf_steps() {
        let d = Empirical::from_sample(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(d.cdf(0.5), 0.0);
        assert!((d.cdf(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((d.cdf(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.cdf(3.0), 1.0);
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let d = Empirical::from_sample(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(d.quantile(0.0), 10.0);
        assert_eq!(d.quantile(0.25), 10.0);
        assert_eq!(d.quantile(0.5), 20.0);
        assert_eq!(d.quantile(1.0), 40.0);
    }

    #[test]
    fn moments_match_sample() {
        let d = Empirical::from_sample(&[2.0, 4.0, 6.0]).unwrap();
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert!((d.variance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn samples_come_from_data() {
        let data = [1.0, 5.0, 9.0];
        let d = Empirical::from_sample(&data).unwrap();
        let mut rng = Rng64::new(3);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!(data.contains(&x));
        }
    }

    #[test]
    fn pdf_integrates_roughly_to_one() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect();
        let d = Empirical::from_sample(&data).unwrap();
        let mut integral = 0.0;
        let steps = 2000;
        let (lo, hi) = (0.0, 9.99);
        for i in 0..steps {
            let x = lo + (hi - lo) * (i as f64 + 0.5) / steps as f64;
            integral += d.pdf(x) * (hi - lo) / steps as f64;
        }
        assert!((integral - 1.0).abs() < 0.05, "integral {integral}");
    }
}
