//! Histograms: the fixed-bin 1-D histogram and Luthi-style
//! multi-dimensional VU-lists.
//!
//! A *VU-list* (vector-of-usage list) is a sparse multi-dimensional
//! histogram over parameter vectors — e.g. (arrival-rate bin, job-size bin,
//! memory-demand bin) — that both characterizes a workload and, because it
//! is a joint distribution, can be *sampled* to generate synthetic jobs that
//! preserve cross-feature correlations.

use std::collections::BTreeMap;

use kooza_sim::rng::Rng64;

use crate::{ensure_finite, ensure_len, Result, StatsError};

/// A fixed-bin one-dimensional histogram.
///
/// ```
/// use kooza_stats::histogram::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5)?;
/// for x in [1.0, 1.5, 7.2] { h.record(x); }
/// assert_eq!(h.count(0), 2); // [0,2)
/// assert_eq!(h.count(3), 1); // [6,8)
/// assert_eq!(h.total(), 3);
/// # Ok::<(), kooza_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Errors if `bins == 0` or the range is empty/non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(StatsError::InvalidInput("bins must be positive".into()));
        }
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(StatsError::InvalidInput(format!("bad range [{lo}, {hi})")));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        })
    }

    /// Records one observation (out-of-range values go to under/overflow).
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = self.bin_of(x);
            self.counts[idx] += 1;
        }
    }

    /// The bin index `x` falls into (`x` must be within range).
    pub fn bin_of(&self, x: f64) -> usize {
        let f = (x - self.lo) / (self.hi - self.lo);
        ((f * self.counts.len() as f64) as usize).min(self.counts.len() - 1)
    }

    /// Count in bin `idx`.
    pub fn count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations recorded (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Midpoint of bin `idx`.
    pub fn bin_center(&self, idx: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (idx as f64 + 0.5) * w
    }

    /// In-range counts as a density (sums to 1 over in-range mass).
    pub fn normalized(&self) -> Vec<f64> {
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / in_range as f64).collect()
    }
}

/// A sparse multi-dimensional histogram over binned feature vectors
/// (Luthi's VU-list).
///
/// Dimensions are defined by per-dimension `(lo, hi, bins)` edges; cells are
/// stored sparsely. Sampling draws a cell with probability proportional to
/// its count, then a uniform point inside the cell — preserving joint
/// structure that per-dimension histograms would lose.
///
/// ```
/// use kooza_sim::rng::Rng64;
/// use kooza_stats::histogram::VuList;
///
/// let mut vu = VuList::new(&[(0.0, 10.0, 10), (0.0, 1.0, 4)])?;
/// vu.record(&[3.2, 0.9])?;
/// vu.record(&[3.4, 0.8])?;
/// let mut rng = Rng64::new(1);
/// let v = vu.sample(&mut rng).unwrap();
/// assert!(v[0] >= 3.0 && v[0] < 4.0);
/// assert!(v[1] >= 0.75 && v[1] < 1.0);
/// # Ok::<(), kooza_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VuList {
    dims: Vec<(f64, f64, usize)>,
    cells: BTreeMap<Vec<usize>, u64>,
    total: u64,
}

impl VuList {
    /// Creates a VU-list with the given `(lo, hi, bins)` per dimension.
    ///
    /// # Errors
    ///
    /// Errors if no dimensions are given or any dimension is degenerate.
    pub fn new(dims: &[(f64, f64, usize)]) -> Result<Self> {
        if dims.is_empty() {
            return Err(StatsError::InvalidInput("VU-list needs at least one dimension".into()));
        }
        for &(lo, hi, bins) in dims {
            if bins == 0 || !(lo.is_finite() && hi.is_finite() && lo < hi) {
                return Err(StatsError::InvalidInput(format!(
                    "bad dimension ({lo}, {hi}, {bins})"
                )));
            }
        }
        Ok(VuList {
            dims: dims.to_vec(),
            cells: BTreeMap::new(),
            total: 0,
        })
    }

    /// Number of dimensions.
    pub fn dimensions(&self) -> usize {
        self.dims.len()
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Total recorded vectors.
    pub fn total(&self) -> u64 {
        self.total
    }

    fn cell_of(&self, v: &[f64]) -> Result<Vec<usize>> {
        if v.len() != self.dims.len() {
            return Err(StatsError::InvalidInput(format!(
                "vector has {} dims, VU-list has {}",
                v.len(),
                self.dims.len()
            )));
        }
        ensure_finite(v)?;
        Ok(v.iter()
            .zip(&self.dims)
            .map(|(&x, &(lo, hi, bins))| {
                let f = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
                ((f * bins as f64) as usize).min(bins - 1)
            })
            .collect())
    }

    /// Records one feature vector (values clamp to the range edges).
    ///
    /// # Errors
    ///
    /// Errors on a dimension mismatch or non-finite values.
    pub fn record(&mut self, v: &[f64]) -> Result<()> {
        let cell = self.cell_of(v)?;
        *self.cells.entry(cell).or_insert(0) += 1;
        self.total += 1;
        Ok(())
    }

    /// Count in the cell containing `v`.
    ///
    /// # Errors
    ///
    /// Errors on a dimension mismatch or non-finite values.
    pub fn count_at(&self, v: &[f64]) -> Result<u64> {
        Ok(self.cells.get(&self.cell_of(v)?).copied().unwrap_or(0))
    }

    /// Draws a synthetic feature vector; `None` if nothing was recorded.
    pub fn sample(&self, rng: &mut Rng64) -> Option<Vec<f64>> {
        if self.total == 0 {
            return None;
        }
        let mut target = rng.next_bounded(self.total);
        let mut chosen: Option<&Vec<usize>> = None;
        for (cell, &count) in &self.cells {
            if target < count {
                chosen = Some(cell);
                break;
            }
            target -= count;
        }
        let cell = chosen?;
        Some(
            cell.iter()
                .zip(&self.dims)
                .map(|(&idx, &(lo, hi, bins))| {
                    let w = (hi - lo) / bins as f64;
                    lo + (idx as f64 + rng.next_f64()) * w
                })
                .collect(),
        )
    }

    /// Marginal histogram counts along one dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range.
    pub fn marginal(&self, dim: usize) -> Vec<u64> {
        assert!(dim < self.dims.len(), "dimension {dim} out of range");
        let bins = self.dims[dim].2;
        let mut out = vec![0u64; bins];
        for (cell, &count) in &self.cells {
            out[cell[dim]] += count;
        }
        out
    }
}

/// Builds a 1-D histogram of `data` with automatic range and Sturges bins.
///
/// # Errors
///
/// Errors on empty, non-finite or constant data.
pub fn auto_histogram(data: &[f64]) -> Result<Histogram> {
    ensure_len(data, 2)?;
    ensure_finite(data)?;
    let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if hi <= lo {
        return Err(StatsError::InvalidInput("constant data has no histogram range".into()));
    }
    let bins = (1.0 + (data.len() as f64).log2()).ceil() as usize;
    let mut h = Histogram::new(lo, hi + (hi - lo) * 1e-9, bins)?;
    for &x in data {
        h.record(x);
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.record(-1.0);
        h.record(0.0);
        h.record(9.999);
        h.record(10.0);
        h.record(25.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_normalized_sums_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        for i in 0..100 {
            h.record(i as f64 / 100.0);
        }
        let sum: f64 = h.normalized().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bin_center() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn histogram_rejects_bad_args() {
        assert!(Histogram::new(0.0, 10.0, 0).is_err());
        assert!(Histogram::new(5.0, 5.0, 3).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 3).is_err());
    }

    #[test]
    fn vu_list_records_and_counts() {
        let mut vu = VuList::new(&[(0.0, 4.0, 4), (0.0, 4.0, 4)]).unwrap();
        vu.record(&[1.5, 2.5]).unwrap();
        vu.record(&[1.7, 2.1]).unwrap();
        vu.record(&[3.5, 0.5]).unwrap();
        assert_eq!(vu.count_at(&[1.0, 2.0]).unwrap(), 2);
        assert_eq!(vu.count_at(&[3.0, 0.0]).unwrap(), 1);
        assert_eq!(vu.count_at(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(vu.occupied_cells(), 2);
        assert_eq!(vu.total(), 3);
    }

    #[test]
    fn vu_list_dimension_mismatch() {
        let mut vu = VuList::new(&[(0.0, 1.0, 2)]).unwrap();
        assert!(vu.record(&[0.5, 0.5]).is_err());
        assert!(vu.count_at(&[]).is_err());
    }

    #[test]
    fn vu_list_sampling_preserves_joint_structure() {
        // Only the diagonal cells are populated; samples must stay on it.
        let mut vu = VuList::new(&[(0.0, 2.0, 2), (0.0, 2.0, 2)]).unwrap();
        for _ in 0..50 {
            vu.record(&[0.5, 0.5]).unwrap();
            vu.record(&[1.5, 1.5]).unwrap();
        }
        let mut rng = Rng64::new(42);
        for _ in 0..200 {
            let v = vu.sample(&mut rng).unwrap();
            let same_half = (v[0] < 1.0) == (v[1] < 1.0);
            assert!(same_half, "off-diagonal sample {v:?}");
        }
    }

    #[test]
    fn vu_list_empty_sample_is_none() {
        let vu = VuList::new(&[(0.0, 1.0, 2)]).unwrap();
        assert!(vu.sample(&mut Rng64::new(1)).is_none());
    }

    #[test]
    fn vu_list_marginal() {
        let mut vu = VuList::new(&[(0.0, 2.0, 2), (0.0, 2.0, 2)]).unwrap();
        vu.record(&[0.5, 0.5]).unwrap();
        vu.record(&[0.5, 1.5]).unwrap();
        vu.record(&[1.5, 1.5]).unwrap();
        assert_eq!(vu.marginal(0), vec![2, 1]);
        assert_eq!(vu.marginal(1), vec![1, 2]);
    }

    #[test]
    fn auto_histogram_covers_all_data() {
        let data: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let h = auto_histogram(&data).unwrap();
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 256);
        // Sturges: 1 + log2(256) = 9 bins.
        assert_eq!(h.bins(), 9);
    }

    #[test]
    fn auto_histogram_rejects_constant() {
        assert!(auto_histogram(&[3.0, 3.0, 3.0]).is_err());
    }
}
