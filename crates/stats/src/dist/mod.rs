//! Probability distributions with analytic pdf/cdf/quantile and
//! reproducible sampling.
//!
//! Continuous families implement [`Distribution`]; discrete families
//! implement [`DiscreteDistribution`]. Sampling defaults to inversion
//! (one uniform draw per sample), which keeps simulated experiments
//! reproducible under common random numbers.
//!
//! The families here are exactly the ones the workload-modeling literature
//! reaches for: exponential (Poisson arrivals), Pareto (heavy tails, flow
//! sizes), lognormal (service times, file sizes), Weibull (failure and
//! inter-arrival times), normal and uniform (baselines), gamma (aggregated
//! service stages), Zipf (popularity), Poisson/geometric (counts), and the
//! empirical distribution (trace-driven resampling).

mod discrete;
mod empirical;
mod exponential;
mod gamma;
mod normal;
mod pareto;
mod uniform;
mod weibull;

pub use discrete::{Geometric, Poisson, Zipf};
pub use empirical::Empirical;
pub use exponential::Exponential;
pub use gamma::Gamma;
pub use normal::{LogNormal, Normal};
pub use pareto::Pareto;
pub use uniform::Uniform;
pub use weibull::Weibull;

use kooza_sim::rng::Rng64;

/// A continuous univariate distribution.
///
/// Implementations must be internally consistent: `cdf(quantile(p)) == p`
/// (up to floating-point error) and `sample` must follow the cdf. The
/// property-based test suite checks both for every family in this module.
///
/// `Send + Sync` is part of the contract: trained models hold boxed
/// distributions and are shared across `kooza-exec` worker threads.
pub trait Distribution: std::fmt::Debug + Send + Sync {
    /// Probability density at `x` (0 outside the support).
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative probability `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Inverse cdf.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` (implementations may also panic at
    /// the endpoints when the support is unbounded).
    fn quantile(&self, p: f64) -> f64;

    /// Distribution mean (may be infinite, e.g. Pareto with α ≤ 1).
    fn mean(&self) -> f64;

    /// Distribution variance (may be infinite).
    fn variance(&self) -> f64;

    /// Short lowercase family name (`"exponential"`, `"pareto"`, ...).
    fn name(&self) -> &'static str;

    /// Draws one sample. Default: inversion through [`quantile`].
    ///
    /// [`quantile`]: Distribution::quantile
    fn sample(&self, rng: &mut Rng64) -> f64 {
        self.quantile(rng.next_f64_open())
    }

    /// Log-density at `x`; `-inf` outside the support.
    fn log_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }

    /// Mean log-likelihood of a sample under this distribution.
    fn mean_log_likelihood(&self, data: &[f64]) -> f64 {
        if data.is_empty() {
            return f64::NEG_INFINITY;
        }
        data.iter().map(|&x| self.log_pdf(x)).sum::<f64>() / data.len() as f64
    }
}

/// A discrete distribution over non-negative integers.
pub trait DiscreteDistribution: std::fmt::Debug + Send + Sync {
    /// Probability mass at `k`.
    fn pmf(&self, k: u64) -> f64;

    /// Cumulative probability `P(X <= k)`.
    fn cdf(&self, k: u64) -> f64;

    /// Distribution mean.
    fn mean(&self) -> f64;

    /// Short lowercase family name.
    fn name(&self) -> &'static str;

    /// Draws one sample.
    fn sample(&self, rng: &mut Rng64) -> u64;
}

/// Checks a candidate parameter is strictly positive and finite.
pub(crate) fn require_positive(name: &'static str, value: f64) -> crate::Result<()> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(crate::StatsError::InvalidParameter { name, value })
    }
}

/// Panics unless `p` is a probability in `[0, 1]`. Shared by quantiles.
pub(crate) fn assert_probability(p: f64) {
    assert!((0.0..=1.0).contains(&p), "quantile requires p in [0,1], got {p}");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Common-random-number check: inversion sampling means equal seeds give
    /// equal sample paths across families with the same draw count.
    #[test]
    fn inversion_sampling_is_reproducible() {
        let e = Exponential::new(2.0).unwrap();
        let mut r1 = Rng64::new(5);
        let mut r2 = Rng64::new(5);
        let a: Vec<f64> = (0..10).map(|_| e.sample(&mut r1)).collect();
        let b: Vec<f64> = (0..10).map(|_| e.sample(&mut r2)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn mean_log_likelihood_prefers_true_model() {
        let true_d = Exponential::new(1.0).unwrap();
        let wrong_d = Exponential::new(10.0).unwrap();
        let mut rng = Rng64::new(7);
        let data: Vec<f64> = (0..500).map(|_| true_d.sample(&mut rng)).collect();
        assert!(true_d.mean_log_likelihood(&data) > wrong_d.mean_log_likelihood(&data));
    }

    #[test]
    fn mean_log_likelihood_empty_is_neg_inf() {
        let d = Exponential::new(1.0).unwrap();
        assert_eq!(d.mean_log_likelihood(&[]), f64::NEG_INFINITY);
    }
}
