//! A multi-server FIFO station for event-driven queueing models.
//!
//! [`ServerPool`] tracks which of `c` identical servers are busy and queues
//! excess jobs in FIFO order. It does *not* schedule anything itself — the
//! owning model schedules the completion event for each job it is handed —
//! which keeps the pool usable with any event type.

use std::collections::VecDeque;

use crate::collect::TimeWeighted;
use crate::time::{SimDuration, SimTime};

/// A `c`-server FIFO queueing station.
///
/// ```
/// use kooza_sim::{ServerPool, SimTime};
///
/// let mut pool: ServerPool<&str> = ServerPool::new(1);
/// let t0 = SimTime::ZERO;
/// // First job starts immediately.
/// assert_eq!(pool.arrive(t0, "a"), Some("a"));
/// // Second queues behind it.
/// assert_eq!(pool.arrive(t0, "b"), None);
/// // When "a" completes, "b" is released to start.
/// let t1 = SimTime::from_micros(10);
/// assert_eq!(pool.complete(t1), Some("b"));
/// assert_eq!(pool.complete(SimTime::from_micros(20)), None);
/// ```
#[derive(Debug)]
pub struct ServerPool<J> {
    servers: usize,
    busy: usize,
    queue: VecDeque<(SimTime, J)>,
    busy_servers: TimeWeighted,
    queue_len: TimeWeighted,
    total_wait: SimDuration,
    started: u64,
    arrived: u64,
    queue_high_water: usize,
    down: bool,
}

impl<J> ServerPool<J> {
    /// Creates a station with `servers` identical servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a station needs at least one server");
        ServerPool {
            servers,
            busy: 0,
            queue: VecDeque::new(),
            busy_servers: TimeWeighted::new(),
            queue_len: TimeWeighted::new(),
            total_wait: SimDuration::ZERO,
            started: 0,
            arrived: 0,
            queue_high_water: 0,
            down: false,
        }
    }

    /// A job arrives at time `now`.
    ///
    /// Returns `Some(job)` if a server was free and the job should start
    /// service immediately (the caller schedules its completion); `None` if
    /// it was queued.
    ///
    /// # Panics
    ///
    /// Panics if the station is down — routing to a failed station is a
    /// model bug; callers must check [`ServerPool::is_down`] first.
    pub fn arrive(&mut self, now: SimTime, job: J) -> Option<J> {
        assert!(!self.down, "job arrived at a down station");
        self.arrived += 1;
        if self.busy < self.servers {
            self.busy += 1;
            self.started += 1;
            self.busy_servers.record(now, self.busy as f64);
            Some(job)
        } else {
            self.queue.push_back((now, job));
            self.queue_high_water = self.queue_high_water.max(self.queue.len());
            self.queue_len.record(now, self.queue.len() as f64);
            None
        }
    }

    /// A service completes at time `now`.
    ///
    /// Returns `Some(job)` if a queued job should now start service (the
    /// caller schedules its completion); `None` if the queue was empty and a
    /// server simply went idle.
    ///
    /// # Panics
    ///
    /// Panics if no server was busy (a completion without a start).
    pub fn complete(&mut self, now: SimTime) -> Option<J> {
        assert!(self.busy > 0, "completion with no busy server");
        match self.queue.pop_front() {
            Some((enqueued, job)) => {
                self.total_wait += now.saturating_since(enqueued);
                self.started += 1;
                self.queue_len.record(now, self.queue.len() as f64);
                // busy count unchanged: one ends, one starts.
                Some(job)
            }
            None => {
                self.busy -= 1;
                self.busy_servers.record(now, self.busy as f64);
                None
            }
        }
    }

    /// Number of servers currently serving a job.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Number of jobs waiting in queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The longest the queue ever got.
    pub fn queue_high_water(&self) -> usize {
        self.queue_high_water
    }

    /// Total jobs that have arrived.
    pub fn arrivals(&self) -> u64 {
        self.arrived
    }

    /// Marks the station down at `now`: every in-service and queued job is
    /// lost (a crash forgets its work). Returns the number of jobs dropped.
    /// The caller is responsible for never delivering completion events for
    /// jobs that were in service — see the epoch scheme in `kooza-gfs`.
    pub fn fail_all(&mut self, now: SimTime) -> usize {
        let lost = self.busy + self.queue.len();
        self.busy = 0;
        self.busy_servers.record(now, 0.0);
        self.queue.clear();
        self.queue_len.record(now, 0.0);
        self.down = true;
        lost
    }

    /// Brings a down station back into service (empty and idle).
    pub fn set_up(&mut self) {
        self.down = false;
    }

    /// Whether the station is down (crashed and not yet recovered).
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Time-averaged server utilization in `[0, 1]`, measured up to `now`.
    ///
    /// A station observed at `SimTime::ZERO` has accumulated no time, so
    /// the mean is defined as `0.0` (not `NaN`/`busy/servers`).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.busy_servers.mean_until(now, self.busy as f64) / self.servers as f64
    }

    /// Time-averaged queue length, measured up to `now`.
    ///
    /// Defined as `0.0` when observed at `SimTime::ZERO` (no time has
    /// accumulated to average over).
    pub fn mean_queue_len(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        self.queue_len.mean_until(now, self.queue.len() as f64)
    }

    /// Mean waiting time (time in queue, excluding service) over all jobs
    /// that have *started* service.
    pub fn mean_wait(&self) -> SimDuration {
        if self.started == 0 {
            SimDuration::ZERO
        } else {
            self.total_wait / self.started
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_fifo_order() {
        let mut pool = ServerPool::new(1);
        let t = SimTime::ZERO;
        assert_eq!(pool.arrive(t, 1), Some(1));
        assert_eq!(pool.arrive(t, 2), None);
        assert_eq!(pool.arrive(t, 3), None);
        assert_eq!(pool.queued(), 2);
        assert_eq!(pool.complete(SimTime::from_nanos(10)), Some(2));
        assert_eq!(pool.complete(SimTime::from_nanos(20)), Some(3));
        assert_eq!(pool.complete(SimTime::from_nanos(30)), None);
        assert_eq!(pool.busy(), 0);
    }

    #[test]
    fn multi_server_parallelism() {
        let mut pool = ServerPool::new(3);
        let t = SimTime::ZERO;
        assert!(pool.arrive(t, 'a').is_some());
        assert!(pool.arrive(t, 'b').is_some());
        assert!(pool.arrive(t, 'c').is_some());
        assert!(pool.arrive(t, 'd').is_none());
        assert_eq!(pool.busy(), 3);
        assert_eq!(pool.complete(SimTime::from_nanos(5)), Some('d'));
        assert_eq!(pool.busy(), 3);
    }

    #[test]
    fn queue_high_water_survives_draining() {
        let mut pool = ServerPool::new(1);
        let t = SimTime::ZERO;
        assert_eq!(pool.queue_high_water(), 0);
        assert!(pool.arrive(t, 0).is_some());
        assert!(pool.arrive(t, 1).is_none());
        assert!(pool.arrive(t, 2).is_none());
        assert_eq!(pool.queue_high_water(), 2);
        assert!(pool.complete(SimTime::from_nanos(5)).is_some());
        assert!(pool.complete(SimTime::from_nanos(6)).is_some());
        assert_eq!(pool.queued(), 0);
        assert_eq!(pool.queue_high_water(), 2);
    }

    #[test]
    fn wait_time_accounting() {
        let mut pool = ServerPool::new(1);
        assert!(pool.arrive(SimTime::ZERO, ()).is_some());
        assert!(pool.arrive(SimTime::from_nanos(2), ()).is_none());
        // Job 2 waited from t=2 to t=10.
        assert_eq!(pool.complete(SimTime::from_nanos(10)), Some(()));
        assert_eq!(pool.complete(SimTime::from_nanos(20)), None);
        // Two jobs started; total wait 8ns → mean 4ns.
        assert_eq!(pool.mean_wait(), SimDuration::from_nanos(4));
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut pool = ServerPool::new(2);
        assert!(pool.arrive(SimTime::ZERO, ()).is_some());
        // One of two servers busy from t=0 to t=100.
        let now = SimTime::from_nanos(100);
        let u = pool.utilization(now);
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn zero_time_observation_is_zero_not_nan() {
        // Regression: observing a pool at t=0 after an arrival at t=0 used
        // to report utilization busy/servers (a zero-span average); before
        // any record the guard also forecloses any NaN/∞ path. Both
        // metrics must read 0.0 — no time has accumulated.
        let mut pool = ServerPool::new(2);
        assert!(pool.arrive(SimTime::ZERO, 'a').is_some());
        assert!(pool.arrive(SimTime::ZERO, 'b').is_some());
        assert!(pool.arrive(SimTime::ZERO, 'c').is_none());
        assert_eq!(pool.utilization(SimTime::ZERO), 0.0);
        assert_eq!(pool.mean_queue_len(SimTime::ZERO), 0.0);
        // A fresh pool observed before any arrival is also 0.0.
        let empty: ServerPool<()> = ServerPool::new(3);
        assert_eq!(empty.utilization(SimTime::ZERO), 0.0);
        assert_eq!(empty.mean_queue_len(SimTime::ZERO), 0.0);
        assert_eq!(empty.utilization(SimTime::from_nanos(10)), 0.0);
        assert_eq!(empty.mean_queue_len(SimTime::from_nanos(10)), 0.0);
    }

    #[test]
    fn fail_all_drops_work_and_blocks_arrivals() {
        let mut pool = ServerPool::new(1);
        assert!(pool.arrive(SimTime::ZERO, 1).is_some());
        assert!(pool.arrive(SimTime::ZERO, 2).is_none());
        assert!(pool.arrive(SimTime::ZERO, 3).is_none());
        assert!(!pool.is_down());
        let lost = pool.fail_all(SimTime::from_nanos(50));
        assert_eq!(lost, 3, "one in service + two queued");
        assert!(pool.is_down());
        assert_eq!(pool.busy(), 0);
        assert_eq!(pool.queued(), 0);
        pool.set_up();
        assert!(!pool.is_down());
        // The recovered station serves again from empty.
        assert_eq!(pool.arrive(SimTime::from_nanos(60), 4), Some(4));
    }

    #[test]
    fn utilization_integrates_across_a_crash() {
        let mut pool = ServerPool::new(1);
        assert!(pool.arrive(SimTime::ZERO, ()).is_some());
        // Busy 0..50, crashed (idle) 50..100 → utilization 0.5.
        pool.fail_all(SimTime::from_nanos(50));
        let u = pool.utilization(SimTime::from_nanos(100));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    #[should_panic(expected = "down station")]
    fn arrival_at_down_station_panics() {
        let mut pool = ServerPool::new(1);
        pool.fail_all(SimTime::ZERO);
        pool.arrive(SimTime::from_nanos(1), ());
    }

    #[test]
    #[should_panic(expected = "no busy server")]
    fn completion_without_start_panics() {
        let mut pool: ServerPool<()> = ServerPool::new(1);
        pool.complete(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _: ServerPool<()> = ServerPool::new(0);
    }
}
