//! Multi-server modeling: one KOOZA instance per chunkserver.
//!
//! §4: "Scaling to multiple servers in order to simulate real-application
//! scenarios requires multiple instances of the model." A [`KoozaFleet`]
//! trains one [`Kooza`] per server from the per-server trace split the GFS
//! simulator provides, and generates per-server synthetic streams — the
//! unit of large-scale DC simulation §5 argues for.
//!
//! Training and generation fan out over `kooza-exec`: each server is an
//! independent task, per-task randomness comes from serially pre-forked
//! child generators, and results merge in server order — so the fleet is
//! bit-identical at any thread count.

use kooza_sim::rng::Rng64;
use kooza_trace::view::TraceView;
use kooza_trace::TraceSet;

use crate::kooza::Kooza;
use crate::{ModelError, Result, SyntheticRequest, WorkloadModel};

/// One trained model per server.
#[derive(Debug)]
pub struct KoozaFleet {
    servers: Vec<Kooza>,
}

impl KoozaFleet {
    /// Trains one model per server trace.
    ///
    /// Every server must have a trainable trace; a server that saw no
    /// requests is a configuration problem the caller should see, not
    /// silently drop.
    ///
    /// # Errors
    ///
    /// Propagates the first per-server training failure, or errors on an
    /// empty fleet.
    pub fn fit(per_server_traces: &[TraceSet]) -> Result<Self> {
        let views: Vec<TraceView<'_>> = per_server_traces.iter().map(TraceSet::as_view).collect();
        Self::fit_views(&views)
    }

    /// Trains one model per borrowed server view — the zero-copy path for
    /// [`kooza_gfs::ClusterOutcome::server_views`]: the cluster trace is
    /// stored once and each training task reads its server's slice.
    /// Per-server fits run in parallel; fitting draws no randomness, so
    /// the result is identical at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates the first per-server training failure, or errors on an
    /// empty fleet.
    pub fn fit_views(views: &[TraceView<'_>]) -> Result<Self> {
        if views.is_empty() {
            return Err(ModelError::InsufficientRequests { needed: 1, got: 0 });
        }
        let servers: Result<Vec<Kooza>> = kooza_obs::global::stage("fleet.train", || {
            kooza_exec::par_map(views, Kooza::fit_view).into_iter().collect()
        });
        let fleet = KoozaFleet { servers: servers? };
        kooza_obs::global::counter_add("fleet.servers_trained", fleet.len() as u64);
        Ok(fleet)
    }

    /// Number of per-server models.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the fleet is empty (never true for a fitted fleet).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// The model for one server.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn server(&self, server: usize) -> &Kooza {
        &self.servers[server]
    }

    /// Iterates over the per-server models.
    pub fn iter(&self) -> impl Iterator<Item = &Kooza> {
        self.servers.iter()
    }

    /// Total trained parameters across the fleet — the paper's scalability
    /// column: per-server models grow linearly in server count, not with
    /// cross-server state.
    pub fn parameter_count(&self) -> usize {
        self.servers.iter().map(|m| m.parameter_count()).sum()
    }

    /// Generates an independent synthetic stream per server (each server's
    /// arrival process and request mix is its own).
    ///
    /// The child generators are forked from `rng` serially *before* the
    /// parallel fan-out, so the output — and the caller's `rng` state
    /// afterwards — matches the old serial implementation exactly.
    pub fn generate_per_server(
        &self,
        n_per_server: usize,
        rng: &mut Rng64,
    ) -> Vec<Vec<SyntheticRequest>> {
        let children: Vec<Rng64> = self.servers.iter().map(|_| rng.fork()).collect();
        kooza_obs::global::stage("fleet.generate", || {
            kooza_exec::par_map_indexed(&children, |server, child| {
                let mut child = child.clone();
                self.servers[server].generate(n_per_server, &mut child)
            })
        })
    }

    /// Aggregate fleet arrival rate (sum of per-server rates), req/s.
    pub fn aggregate_rate(&self) -> f64 {
        self.servers.iter().map(|m| m.network().mean_rate()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};

    fn multi_server_outcome() -> kooza_gfs::ClusterOutcome {
        let mut config = ClusterConfig::cluster(3);
        config.workload = WorkloadMix {
            read_fraction: 1.0,
            mean_interarrival_secs: 0.01,
            n_chunks: 4000,
            zipf_skew: 0.8,
            ..WorkloadMix::read_heavy()
        };
        Cluster::new(&config).unwrap().run(3000, 2200)
    }

    #[test]
    fn per_server_views_partition_the_cluster_trace() {
        let outcome = multi_server_outcome();
        let views = outcome.server_views();
        assert_eq!(views.len(), 3);
        let total_net: usize = views.iter().map(|v| v.network.len()).sum();
        assert_eq!(total_net, outcome.trace.network.len());
        let total_cpu: usize = views.iter().map(|v| v.cpu.len()).sum();
        assert_eq!(total_cpu, outcome.trace.cpu.len());
        // Reads spread across replicas: every server served a share.
        for v in &views {
            assert!(v.cpu.len() > 300, "server saw only {} requests", v.cpu.len());
        }
    }

    #[test]
    fn fleet_trains_and_generates() {
        let outcome = multi_server_outcome();
        let fleet = KoozaFleet::fit_views(&outcome.server_views()).unwrap();
        assert_eq!(fleet.len(), 3);
        assert!(!fleet.is_empty());
        let mut rng = Rng64::new(1);
        let streams = fleet.generate_per_server(200, &mut rng);
        assert_eq!(streams.len(), 3);
        for stream in &streams {
            assert_eq!(stream.len(), 200);
        }
        assert!(fleet.parameter_count() > 3 * 1000);
    }

    #[test]
    fn parallel_generation_is_deterministic() {
        let outcome = multi_server_outcome();
        let fleet = KoozaFleet::fit_views(&outcome.server_views()).unwrap();
        // Same seed → identical streams, and the caller's RNG leaves in
        // the same state (children are forked serially before the fan-
        // out). Thread-count invariance of the whole pipeline is pinned
        // by the umbrella determinism test, which owns its process.
        let mut rng_a = Rng64::new(77);
        let mut rng_b = Rng64::new(77);
        let a = fleet.generate_per_server(50, &mut rng_a);
        let b = fleet.generate_per_server(50, &mut rng_b);
        assert_eq!(a, b);
        assert_eq!(rng_a, rng_b);
    }

    #[test]
    fn aggregate_rate_matches_cluster_rate() {
        let outcome = multi_server_outcome();
        let fleet = KoozaFleet::fit_views(&outcome.server_views()).unwrap();
        // Cluster offered 100 req/s; per-server models should sum back.
        let agg = fleet.aggregate_rate();
        assert!((agg - 100.0).abs() < 12.0, "aggregate rate {agg}");
    }

    #[test]
    fn per_server_models_reflect_per_server_load() {
        let outcome = multi_server_outcome();
        let fleet = KoozaFleet::fit_views(&outcome.server_views()).unwrap();
        for (i, model) in fleet.iter().enumerate() {
            let rate = model.network().mean_rate();
            // 3-way-replicated reads split roughly evenly.
            assert!((15.0..60.0).contains(&rate), "server {i} rate {rate}");
        }
    }

    #[test]
    fn owned_trace_fit_still_works() {
        // The owned-TraceSet entry point stays as a thin wrapper.
        let outcome = multi_server_outcome();
        let owned: Vec<TraceSet> =
            outcome.server_views().iter().map(|v| v.to_owned_set()).collect();
        let fleet = KoozaFleet::fit(&owned).unwrap();
        assert_eq!(fleet.len(), 3);
    }

    #[test]
    fn empty_fleet_rejected() {
        assert!(KoozaFleet::fit(&[]).is_err());
        assert!(KoozaFleet::fit_views(&[]).is_err());
        // A server with an empty trace fails loudly.
        let outcome = multi_server_outcome();
        let mut views = outcome.server_views();
        views.push(TraceView::default());
        assert!(KoozaFleet::fit_views(&views).is_err());
    }
}
