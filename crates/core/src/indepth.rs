//! The in-depth baseline: request tracing without subsystem features.
//!
//! §3.2: in-depth models capture "an application's control flow, namely
//! trace the steps of a request's execution through the system" and model
//! incoming traffic accurately, but "although accurate in capturing user
//! behavior patterns, [the approach] does not capture the features of the
//! workload in various subsystems", impeding performance/power modeling.
//!
//! Concretely: this model learns the request classes (phase sequences and
//! probabilities — exactly what a Dapper/queueing-network view gives) and
//! per-phase *durations*, plus the arrival process. It generates requests
//! whose timing structure is right but whose phases are opaque — no sizes,
//! banks or LBNs.

use kooza_sim::rng::Rng64;
use kooza_stats::dist::Distribution;
use kooza_trace::TraceSet;

use crate::class::assemble_observations;
use crate::structure::StructureModel;
use crate::subsystem::NetworkModel;
use crate::{PhaseDemand, Result, SyntheticRequest, WorkloadModel};

/// The in-depth baseline model.
#[derive(Debug)]
pub struct InDepthModel {
    arrivals: NetworkModel,
    structure: StructureModel,
    trained_requests: usize,
}

impl InDepthModel {
    /// Trains from a trace's span trees and arrival stream.
    ///
    /// # Errors
    ///
    /// Errors if the trace lacks network records or span trees.
    pub fn fit(trace: &TraceSet) -> Result<Self> {
        let observations = assemble_observations(trace)?;
        Ok(InDepthModel {
            arrivals: NetworkModel::fit(&observations)?,
            structure: StructureModel::fit(&observations)?,
            trained_requests: observations.len(),
        })
    }

    /// The learned structure (classes and phase durations).
    pub fn structure(&self) -> &StructureModel {
        &self.structure
    }

    /// Number of requests in the training trace.
    pub fn trained_requests(&self) -> usize {
        self.trained_requests
    }
}

impl WorkloadModel for InDepthModel {
    fn name(&self) -> &'static str {
        "in-depth"
    }

    fn generate(&self, n: usize, rng: &mut Rng64) -> Vec<SyntheticRequest> {
        (0..n)
            .map(|_| {
                let class = self.structure.sample_class(rng);
                let phases = class
                    .phase_durations
                    .iter()
                    .map(|d| PhaseDemand::Opaque {
                        duration_nanos: d.sample(rng).max(0.0) as u64,
                    })
                    .collect();
                SyntheticRequest {
                    interarrival_secs: self.arrivals.sample_gap(rng),
                    phases,
                }
            })
            .collect()
    }

    fn captures_request_features(&self) -> bool {
        false
    }

    fn captures_time_dependencies(&self) -> bool {
        true
    }

    fn parameter_count(&self) -> usize {
        // Arrival fit + per-class sequence and duration summaries.
        2 + self
            .structure
            .classes()
            .iter()
            .map(|c| 1 + 2 * c.signature.0.len())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};

    fn trace(mix: WorkloadMix, n: u64, seed: u64) -> TraceSet {
        let mut config = ClusterConfig::small();
        config.workload = mix;
        Cluster::new(&config).unwrap().run(n, seed).trace
    }

    #[test]
    fn latency_structure_preserved() {
        let t = trace(WorkloadMix::read_heavy(), 800, 71);
        let model = InDepthModel::fit(&t).unwrap();
        let mut rng = Rng64::new(72);
        let reqs = model.generate(800, &mut rng);
        // Synthetic end-to-end time (sum of opaque phases) matches the
        // original latency distribution.
        let obs = assemble_observations(&t).unwrap();
        let orig: Vec<f64> = obs.iter().map(|o| o.latency_nanos as f64 / 1e9).collect();
        let synth: Vec<f64> = reqs
            .iter()
            .map(|r| {
                r.phases
                    .iter()
                    .map(|p| match p {
                        PhaseDemand::Opaque { duration_nanos } => *duration_nanos as f64 / 1e9,
                        _ => 0.0,
                    })
                    .sum()
            })
            .collect();
        let orig_mean: f64 = orig.iter().sum::<f64>() / orig.len() as f64;
        let synth_mean: f64 = synth.iter().sum::<f64>() / synth.len() as f64;
        assert!(
            (orig_mean - synth_mean).abs() / orig_mean < 0.1,
            "orig {orig_mean} synth {synth_mean}"
        );
    }

    #[test]
    fn no_subsystem_features_generated() {
        let model = InDepthModel::fit(&trace(WorkloadMix::mixed(), 500, 73)).unwrap();
        let mut rng = Rng64::new(74);
        let reqs = model.generate(100, &mut rng);
        for r in &reqs {
            assert_eq!(r.network_in_bytes(), 0);
            assert!(r.disk_demand().is_none());
            assert!(r.memory_demand().is_none());
            assert!(r.phases.iter().all(|p| matches!(p, PhaseDemand::Opaque { .. })));
        }
    }

    #[test]
    fn arrival_rate_preserved() {
        let model = InDepthModel::fit(&trace(WorkloadMix::read_heavy(), 1500, 75)).unwrap();
        let mut rng = Rng64::new(76);
        let reqs = model.generate(3000, &mut rng);
        let mean_gap: f64 =
            reqs.iter().map(|r| r.interarrival_secs).sum::<f64>() / reqs.len() as f64;
        assert!((1.0 / mean_gap - 50.0).abs() < 6.0, "rate {}", 1.0 / mean_gap);
    }

    #[test]
    fn trait_properties() {
        let model = InDepthModel::fit(&trace(WorkloadMix::read_heavy(), 200, 77)).unwrap();
        assert_eq!(model.name(), "in-depth");
        assert!(!model.captures_request_features());
        assert!(model.captures_time_dependencies());
        assert!(model.parameter_count() > 0);
    }
}
