//! EXP-B — Infinite-source vs SURGE-style user-equivalent traffic (Joo et
//! al.).
//!
//! §2.1.3: Joo et al. "conclude that results for the two models vary
//! greatly, therefore the accuracy of the model in capturing user behavior
//! ... [is] instrumental for the fidelity of the observed results." We
//! drive the same M/M/c service tier with (a) an infinite-source constant-
//! rate model and (b) a user-equivalent model with heavy-tailed think
//! times, at matched mean rates, and compare the latency the two predict.

use kooza_bench::{banner, section, EXPERIMENT_SEED};
use kooza_queueing::arrival::{ArrivalProcess, PoissonArrivals, UserEquivalentArrivals};
use kooza_queueing::network::{simulate, NetworkConfig, NodeConfig};
use kooza_sim::rng::Rng64;
use kooza_stats::dist::Exponential;
use kooza_stats::summary::percentile;

fn measure(
    label: &str,
    arrivals: &mut dyn ArrivalProcess,
    servers: usize,
    mu: f64,
    seed: u64,
) -> (f64, f64, f64) {
    let config = NetworkConfig::tandem(vec![NodeConfig {
        name: label.into(),
        servers,
        service: Box::new(Exponential::new(mu).unwrap()),
    }]);
    let mut rng = Rng64::new(seed);
    let res = simulate(&config, arrivals, 60_000, &mut rng).expect("simulation runs");
    let p99 = percentile(&res.sojourn_samples, 99.0);
    (res.mean_response_secs(), p99, res.nodes[0].utilization)
}

fn main() {
    banner("EXP-B", "Infinite-source vs SURGE user-equivalent traffic");

    // Service tier: 4 servers, 50 req/s each.
    let servers = 4;
    let mu = 50.0;

    section("matched-mean-rate comparison (4 × 50 req/s tier)");
    println!(
        "{:<26} {:>10} {:>14} {:>14} {:>8}",
        "traffic model", "rate", "mean lat (ms)", "p99 lat (ms)", "util"
    );
    for target_rate in [80.0, 120.0, 160.0] {
        // Infinite-source: constant-rate Poisson.
        let mut inf = PoissonArrivals::new(target_rate).unwrap();
        let (inf_mean, inf_p99, inf_util) =
            measure("tier", &mut inf, servers, mu, EXPERIMENT_SEED);

        // User equivalents tuned to the same mean rate: each user cycles
        // ~6 objects then thinks; rate ≈ users * objects / (think + 6*gap).
        let think = 3.0;
        let object_gap = 0.01;
        let objects = 6.0;
        let per_user = objects / (think + objects * object_gap);
        let users = (target_rate / per_user).round() as usize;
        let mut surge = UserEquivalentArrivals::new(users, think, objects, object_gap).unwrap();
        let (s_mean, s_p99, s_util) = measure("tier", &mut surge, servers, mu, EXPERIMENT_SEED);

        println!(
            "{:<26} {:>10.0} {:>14.2} {:>14.2} {:>8.2}",
            "infinite-source", target_rate, inf_mean * 1e3, inf_p99 * 1e3, inf_util
        );
        println!(
            "{:<26} {:>10.0} {:>14.2} {:>14.2} {:>8.2}",
            format!("user-equivalent ({users}u)"),
            target_rate,
            s_mean * 1e3,
            s_p99 * 1e3,
            s_util
        );
        println!(
            "{:<26} {:>10} {:>13.1}x {:>13.1}x",
            "  divergence", "", s_mean / inf_mean, s_p99 / inf_p99
        );
    }
    println!(
        "\npaper claim (Joo et al.): the two traffic models give greatly\n\
         different results at identical mean load — the user-equivalent\n\
         model's page bursts inflate tail latency well beyond the\n\
         infinite-source prediction."
    );
}
