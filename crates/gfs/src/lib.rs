//! A GFS (Google File System) cluster simulator.
//!
//! The paper validates KOOZA on "traces of simplified requests from GFS ...
//! simple GFS client – GFS chunkserver requests that comply with the
//! structure of Figure 1": a request arrives over the network, exercises
//! CPU and memory to locate and verify the data, performs disk I/O, uses
//! the CPU again to aggregate, and responds over the network.
//!
//! We do not have Google's traces (data gate), so this crate *is* the
//! substitute: a deterministic event-driven cluster simulator that emits
//! exactly the four per-subsystem trace streams plus Dapper-style span
//! trees that the modeling pipeline trains on.
//!
//! * [`DiskModel`] — seek-distance-aware disk service times.
//! * [`CpuModel`] — per-byte + per-request cycle costs.
//! * [`MemoryModel`] — banked memory with bank-switch penalties and an
//!   LRU chunk buffer cache.
//! * [`LinkModel`] — latency + bandwidth network links.
//! * [`Master`] — chunk metadata, placement and replication.
//! * [`FaultPlan`] — deterministic crash/recover schedules, degraded
//!   disks and link drops (armed via `ClusterConfig::faults`).
//! * [`Cluster`] — the simulation: clients issue a configurable workload
//!   mix against chunkservers; every request is traced (subject to
//!   sampling) into a [`kooza_trace::TraceSet`].
//!
//! # Example
//!
//! ```
//! use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};
//!
//! let mut config = ClusterConfig::small();
//! config.workload = WorkloadMix::read_heavy();
//! let mut cluster = Cluster::new(&config)?;
//! let outcome = cluster.run(200, 42);
//! assert_eq!(outcome.stats.completed, 200);
//! assert!(!outcome.trace.network.is_empty());
//! # Ok::<(), kooza_gfs::GfsError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod config;
mod fault;
mod hardware;
mod master;

pub use cluster::{default_shards, Cluster, ClusterOutcome, ClusterStats, FaultStats, RequestOutcome, Trial};
pub use config::{ClusterConfig, CpuParams, DiskParams, LinkParams, MemoryParams, Topology, WorkloadMix};
pub use fault::{FaultPlan, FaultSpec, FaultWindow};
pub use hardware::{CpuModel, DiskModel, LinkModel, MemoryModel};
pub use master::{ChunkHandle, Master};

/// Errors from cluster construction.
#[derive(Debug, Clone, PartialEq)]
pub enum GfsError {
    /// A configuration value was out of range.
    InvalidConfig {
        /// Field name.
        field: &'static str,
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for GfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GfsError::InvalidConfig { field, detail } => {
                write!(f, "invalid config field {field}: {detail}")
            }
        }
    }
}

impl std::error::Error for GfsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GfsError>;
