//! Sharded-execution determinism regression: for a fixed shard count, the
//! Table-1/Table-2 kooza-json pipeline fed by a sharded simulation and the
//! stripped `--obs` report must be byte-identical whether the `kooza-exec`
//! pool runs 1, 2 or 8 workers — healthy and fault-injected alike.
//!
//! This is the contract DESIGN.md's "Sharded execution" section states:
//! shards exchange messages at window barriers in canonical
//! `(time, shard, seq)` order, all randomness lives on the control shard,
//! and stepping the shards serially or on any number of pool workers
//! changes nothing observable. `shards = 1` additionally delegates to the
//! single-engine path, so the sweep pins sharded-1 == legacy for free.

use kooza::class::assemble_observations;
use kooza::crossexam::cross_examine;
use kooza::validate::validate;
use kooza::{InBreadthModel, InDepthModel, Kooza, ReplayConfig, WorkloadModel};
use kooza_gfs::{Cluster, ClusterConfig, FaultSpec, WorkloadMix};
use kooza_json::{to_string, Json};
use kooza_obs::strip_nondeterministic;
use kooza_sim::rng::Rng64;

const SEED: u64 = 7011;
const SHARD_COUNTS: [usize; 2] = [1, 4];

/// A cluster wide enough for four shard groups at replication 3.
fn sharded_config() -> ClusterConfig {
    let mut config = ClusterConfig::cluster(12);
    config.workload = WorkloadMix {
        n_chunks: 400,
        ..WorkloadMix::mixed()
    };
    config
}

fn faulty_config() -> ClusterConfig {
    let mut config = sharded_config();
    config.workload.mean_interarrival_secs = 0.05;
    config.faults = Some(
        FaultSpec::parse("mttf=3,mttr=0.5,timeout=0.4,retries=10,detect=0.1")
            .expect("valid fault spec"),
    );
    config
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Table 2 at test scale, trained on a sharded simulation's trace.
fn table2_json(shards: usize) -> Json {
    let config = sharded_config();
    let outcome = Cluster::new(&config).expect("config").run_sharded(500, SEED, shards);
    let observations = assemble_observations(&outcome.trace).expect("assembles");
    let model = Kooza::fit(&outcome.trace).expect("trains");
    let mut rng = Rng64::new(SEED + 1);
    let synthetic = model.generate(500, &mut rng);
    let report = validate(&model, &observations, &synthetic, ReplayConfig::from(&config));
    obj(vec![
        (
            "rows",
            Json::Array(
                report
                    .rows
                    .iter()
                    .map(|r| {
                        obj(vec![
                            ("subsystem", Json::str(r.subsystem)),
                            ("metric", Json::str(r.metric)),
                            ("original", Json::F64(r.original)),
                            ("synthetic", Json::F64(r.synthetic)),
                            ("variation", Json::F64(r.variation)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("max_feature_variation", Json::F64(report.max_feature_variation())),
        (
            "latency_variation",
            report.latency_variation().map(Json::F64).unwrap_or(Json::Null),
        ),
    ])
}

/// Table 1 at test scale: the three model families cross-examined on a
/// sharded simulation's trace.
fn table1_json(shards: usize) -> Json {
    let config = sharded_config();
    let trace = Cluster::new(&config)
        .expect("config")
        .run_sharded(500, SEED + 2, shards)
        .trace;
    let observations = assemble_observations(&trace).expect("assembles");
    let kooza = Kooza::fit(&trace).expect("kooza");
    let inb = InBreadthModel::fit(&trace).expect("in-breadth");
    let ind = InDepthModel::fit(&trace).expect("in-depth");
    let table = cross_examine(
        &[&inb, &ind, &kooza],
        &observations,
        ReplayConfig::from(&config),
        500,
        SEED + 3,
    );
    Json::Array(
        table
            .rows
            .iter()
            .map(|r| {
                obj(vec![
                    ("model", Json::str(r.model.clone())),
                    ("feature_error", Json::F64(r.feature_error)),
                    ("latency_ks", Json::F64(r.latency_ks)),
                    ("parameter_count", Json::U64(r.parameter_count as u64)),
                ])
            })
            .collect(),
    )
}

/// The per-request outcome log of a fault-injected sharded run: every
/// field the fault path touches, plus the aggregate fault counters.
fn faulty_log(shards: usize) -> String {
    let config = faulty_config();
    let outcome = Cluster::new(&config).expect("config").run_sharded(400, SEED + 4, shards);
    let mut log = String::new();
    for r in &outcome.requests {
        log += &format!(
            "{{\"id\":{},\"read\":{},\"size\":{},\"latency\":{},\"cpu\":{},\
             \"cache\":{},\"retries\":{},\"faulted\":{},\"failed\":{}}}\n",
            r.id,
            r.is_read,
            r.size,
            r.latency_nanos,
            r.cpu_busy_nanos,
            r.cache_hit,
            r.retries,
            r.faulted,
            r.failed,
        );
    }
    log += &format!(
        "completed {} faults {:?}\n",
        outcome.stats.completed, outcome.stats.faults,
    );
    log
}

/// One full instrumented pass at a given shard count. Returns the
/// kooza-json pipeline output, the faulty outcome log and the raw obs
/// JSONL (the caller strips it).
fn instrumented_pass(shards: usize) -> (String, String, String) {
    kooza_obs::global::enable();
    let tables = to_string(&obj(vec![
        ("table2", table2_json(shards)),
        ("table1", table1_json(shards)),
    ]));
    let log = faulty_log(shards);
    let report = kooza_obs::global::report().expect("enabled");
    kooza_obs::global::disable();
    (tables, log, report.to_jsonl())
}

#[test]
fn sharded_runs_are_byte_identical_across_thread_counts() {
    // One #[test] drives the whole sweep: the thread override and the
    // observability sink are process-global, so a single test keeps this
    // binary free of cross-test races. The grid is threads x shards x
    // {healthy tables, faulty log, stripped obs}; outputs must agree
    // across thread counts for each fixed shard count (different shard
    // counts are different — documented — simulations).
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 8] {
        kooza_exec::set_thread_override(Some(threads));
        for shards in SHARD_COUNTS {
            let (tables, log, raw) = instrumented_pass(shards);
            let stripped = strip_nondeterministic(&raw).expect("well-formed JSONL");
            outputs.push((threads, shards, tables, log, stripped));
        }
    }
    kooza_exec::set_thread_override(None);

    for &reference_shards in &SHARD_COUNTS {
        let (_, _, tables_ref, log_ref, obs_ref) = outputs
            .iter()
            .find(|(t, s, ..)| *t == 1 && *s == reference_shards)
            .expect("serial reference ran");
        assert!(tables_ref.contains("table2") && tables_ref.contains("latency_ks"));
        assert!(log_ref.contains("\"faulted\":true"), "no request rode through a fault");
        assert!(log_ref.contains("crashes:"), "outcome log lacks fault stats");
        if reference_shards > 1 {
            for needle in ["sim.shard.shards", "sim.shard.windows", "sim.shard.messages"] {
                assert!(obs_ref.contains(needle), "stripped report lacks {needle}");
            }
        }
        assert!(!obs_ref.contains("\"wall\""), "strip left wall-clock fields behind");

        for (threads, shards, tables, log, obs) in &outputs {
            if *shards != reference_shards || *threads == 1 {
                continue;
            }
            assert_eq!(
                tables, tables_ref,
                "tables at {threads} threads, {shards} shards diverged from serial"
            );
            assert_eq!(
                log, log_ref,
                "fault log at {threads} threads, {shards} shards diverged from serial"
            );
            assert_eq!(
                obs, obs_ref,
                "stripped obs at {threads} threads, {shards} shards diverged from serial"
            );
        }
    }

    // Different shard counts are genuinely different simulations (grouped
    // placement, windowed hops): the sweep would be vacuous if 1 == 4.
    let (_, _, t1, ..) = outputs.iter().find(|(t, s, ..)| *t == 1 && *s == 1).unwrap();
    let (_, _, t4, ..) = outputs.iter().find(|(t, s, ..)| *t == 1 && *s == 4).unwrap();
    assert_ne!(t1, t4, "sharded execution unexpectedly matched the single engine");
}
