//! The discrete-event engine: a monotone clock plus a stable priority queue.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Handle to an event scheduled with [`Engine::schedule_cancellable`].
///
/// Pass it back to [`Engine::cancel`] to withdraw the event before it
/// fires. Handles are cheap value types tied to one engine; a handle from
/// another engine has undefined (but memory-safe) cancel semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle(u64);

/// A scheduled event; ordered by time, then by insertion sequence so that
/// simultaneous events fire in FIFO order (determinism).
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event engine over user-defined event values.
///
/// The engine owns the clock and the pending-event queue. Models drive their
/// own loop with [`Engine::next`], or hand a handler to [`run`].
///
/// ```
/// use kooza_sim::{Engine, SimDuration};
///
/// let mut eng = Engine::new();
/// eng.schedule(SimDuration::from_secs(1), "tick");
/// let (t, ev) = eng.next().unwrap();
/// assert_eq!(ev, "tick");
/// assert_eq!(t, eng.now());
/// ```
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Scheduled<E>>,
    processed: u64,
    pending_high_water: usize,
    /// Sequence numbers of live cancellable events (inserted by
    /// `schedule_cancellable`, removed on delivery or cancellation).
    cancellable: HashSet<u64>,
    /// Sequence numbers cancelled but still sitting in the heap; skipped
    /// (and forgotten) by `next`.
    cancelled: HashSet<u64>,
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            processed: 0,
            pending_high_water: 0,
            cancellable: HashSet::new(),
            cancelled: HashSet::new(),
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending (cancelled-but-not-yet-reaped
    /// timers are not counted).
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// The most events that were ever pending at once — how deep the
    /// event queue got. Survives [`Engine::clear`].
    pub fn pending_high_water(&self) -> usize {
        self.pending_high_water
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time — the simulated past is
    /// immutable.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past (now={}, at={})",
            self.now,
            at
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
        self.pending_high_water = self.pending_high_water.max(self.heap.len());
    }

    /// Schedules `event` to fire `delay` after the current time and
    /// returns a handle the caller can use to [`Engine::cancel`] it —
    /// the primitive timeout timers are built on.
    pub fn schedule_cancellable(&mut self, delay: SimDuration, event: E) -> TimerHandle {
        let seq = self.seq;
        self.schedule(delay, event);
        self.cancellable.insert(seq);
        TimerHandle(seq)
    }

    /// Cancels an event scheduled with [`Engine::schedule_cancellable`].
    ///
    /// Returns `true` if the event was still pending and is now withdrawn;
    /// `false` if it already fired or was already cancelled. The entry is
    /// lazily reaped from the queue, so cancellation is O(1).
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        if self.cancellable.remove(&handle.0) {
            self.cancelled.insert(handle.0);
            true
        } else {
            false
        }
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty (simulation end). Cancelled
    /// timers are skipped silently and do not count as processed.
    ///
    /// Deliberately named like `Iterator::next` — the engine is consumed
    /// the same way — but it is not an `Iterator` because handlers need
    /// `&mut Engine` back between events.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        loop {
            let Scheduled { at, seq, event } = self.heap.pop()?;
            if self.cancelled.remove(&seq) {
                continue;
            }
            self.cancellable.remove(&seq);
            debug_assert!(at >= self.now);
            self.now = at;
            self.processed += 1;
            return Some((at, event));
        }
    }

    /// Peeks at the timestamp of the next live event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.cancelled.is_empty() {
            return self.heap.peek().map(|s| s.at);
        }
        // Rare path: skip lazily-cancelled timers still in the heap.
        self.heap.iter().filter(|s| !self.cancelled.contains(&s.seq)).map(|s| s.at).min()
    }

    /// Discards all pending events (the clock keeps its value).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancellable.clear();
        self.cancelled.clear();
    }
}

/// Runs `engine` to completion (or until `handler` stops scheduling),
/// passing each event to `handler` together with the engine so it can
/// schedule follow-ups.
///
/// ```
/// use kooza_sim::{run, Engine, SimDuration};
///
/// let mut eng = Engine::new();
/// eng.schedule(SimDuration::from_nanos(1), 3u32);
/// let mut total = 0;
/// run(&mut eng, |eng, _t, n| {
///     total += n;
///     if n > 1 {
///         eng.schedule(SimDuration::from_nanos(1), n - 1);
///     }
/// });
/// assert_eq!(total, 3 + 2 + 1);
/// ```
pub fn run<E, F>(engine: &mut Engine<E>, mut handler: F)
where
    F: FnMut(&mut Engine<E>, SimTime, E),
{
    while let Some((t, ev)) = engine.next() {
        handler(engine, t, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_nanos(30), 'c');
        eng.schedule_at(SimTime::from_nanos(10), 'a');
        eng.schedule_at(SimTime::from_nanos(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| eng.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut eng = Engine::new();
        for i in 0..100 {
            eng.schedule_at(SimTime::from_nanos(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| eng.next().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut eng = Engine::new();
        eng.schedule(SimDuration::from_nanos(5), ());
        eng.schedule(SimDuration::from_nanos(3), ());
        let (t1, _) = eng.next().unwrap();
        assert_eq!(t1, SimTime::from_nanos(3));
        assert_eq!(eng.now(), t1);
        let (t2, _) = eng.next().unwrap();
        assert_eq!(t2, SimTime::from_nanos(5));
        assert_eq!(eng.processed(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_past_panics() {
        let mut eng = Engine::new();
        eng.schedule(SimDuration::from_nanos(10), ());
        let _ = eng.next();
        eng.schedule_at(SimTime::from_nanos(5), ());
    }

    #[test]
    fn run_drains_and_allows_rescheduling() {
        let mut eng = Engine::new();
        eng.schedule(SimDuration::from_nanos(1), 5u32);
        let mut seen = Vec::new();
        run(&mut eng, |eng, _t, n| {
            seen.push(n);
            if n > 0 {
                eng.schedule(SimDuration::from_nanos(1), n - 1);
            }
        });
        assert_eq!(seen, vec![5, 4, 3, 2, 1, 0]);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn pending_high_water_tracks_queue_depth() {
        let mut eng = Engine::new();
        assert_eq!(eng.pending_high_water(), 0);
        eng.schedule(SimDuration::from_nanos(1), 'a');
        eng.schedule(SimDuration::from_nanos(2), 'b');
        eng.schedule(SimDuration::from_nanos(3), 'c');
        assert_eq!(eng.pending_high_water(), 3);
        let _ = eng.next();
        let _ = eng.next();
        // Draining does not lower the mark; a shallower refill keeps it.
        eng.schedule(SimDuration::from_nanos(4), 'd');
        assert_eq!(eng.pending(), 2);
        assert_eq!(eng.pending_high_water(), 3);
        // A deeper queue raises it, and clear() keeps the history.
        eng.schedule(SimDuration::from_nanos(5), 'e');
        eng.schedule(SimDuration::from_nanos(6), 'f');
        eng.schedule(SimDuration::from_nanos(7), 'g');
        assert_eq!(eng.pending_high_water(), 5);
        eng.clear();
        assert_eq!(eng.pending_high_water(), 5);
    }

    #[test]
    fn peek_and_clear() {
        let mut eng = Engine::new();
        assert_eq!(eng.peek_time(), None);
        eng.schedule(SimDuration::from_nanos(7), ());
        assert_eq!(eng.peek_time(), Some(SimTime::from_nanos(7)));
        eng.clear();
        assert!(eng.next().is_none());
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let mut eng = Engine::new();
        let h = eng.schedule_cancellable(SimDuration::from_nanos(10), "timeout");
        eng.schedule(SimDuration::from_nanos(20), "work");
        assert_eq!(eng.pending(), 2);
        assert!(eng.cancel(h));
        assert_eq!(eng.pending(), 1);
        // Second cancel is a no-op.
        assert!(!eng.cancel(h));
        let (t, ev) = eng.next().unwrap();
        assert_eq!(ev, "work");
        assert_eq!(t, SimTime::from_nanos(20));
        assert!(eng.next().is_none());
        // Skipped timers do not count as processed.
        assert_eq!(eng.processed(), 1);
    }

    #[test]
    fn uncancelled_timer_fires_and_handle_expires() {
        let mut eng = Engine::new();
        let h = eng.schedule_cancellable(SimDuration::from_nanos(5), 'x');
        let (_, ev) = eng.next().unwrap();
        assert_eq!(ev, 'x');
        // The timer already fired: cancelling its handle is a no-op.
        assert!(!eng.cancel(h));
    }

    #[test]
    fn peek_time_skips_cancelled_timers() {
        let mut eng = Engine::new();
        let h = eng.schedule_cancellable(SimDuration::from_nanos(3), 0);
        eng.schedule(SimDuration::from_nanos(9), 1);
        assert_eq!(eng.peek_time(), Some(SimTime::from_nanos(3)));
        eng.cancel(h);
        assert_eq!(eng.peek_time(), Some(SimTime::from_nanos(9)));
    }

    #[test]
    fn clear_forgets_cancellation_state() {
        let mut eng = Engine::new();
        let h = eng.schedule_cancellable(SimDuration::from_nanos(3), ());
        eng.cancel(h);
        eng.clear();
        assert_eq!(eng.pending(), 0);
        eng.schedule(SimDuration::from_nanos(1), ());
        assert_eq!(eng.pending(), 1);
        assert!(eng.next().is_some());
    }

    #[test]
    fn zero_delay_event_fires_at_now() {
        let mut eng = Engine::new();
        eng.schedule(SimDuration::from_nanos(4), "first");
        let _ = eng.next();
        eng.schedule(SimDuration::ZERO, "second");
        let (t, e) = eng.next().unwrap();
        assert_eq!(t, SimTime::from_nanos(4));
        assert_eq!(e, "second");
    }
}
