//! Trace sampling.
//!
//! Dapper's key overhead lever is sampling 1 of every 1000 requests while
//! keeping sampled traces *complete* — so the decision must be a pure
//! function of the trace id, identical on every server a request touches.
//! [`Sampler`] hashes the trace id; [`AdaptiveSampler`] is the GWP-style
//! variant that adjusts its rate to hold a target number of samples per
//! window regardless of load.

use crate::span::TraceId;

/// Deterministic 1-in-N sampler keyed on the trace id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampler {
    rate: u32,
}

/// SplitMix64-style finalizer used as the id hash.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Sampler {
    /// Keeps roughly one in `rate` traces (`rate = 1` keeps all).
    ///
    /// # Panics
    ///
    /// Panics if `rate == 0`.
    pub fn one_in(rate: u32) -> Self {
        assert!(rate > 0, "sampling rate must be positive");
        Sampler { rate }
    }

    /// The configured `N` in 1-in-N.
    pub fn rate(&self) -> u32 {
        self.rate
    }

    /// Whether this trace is sampled. Pure function of the id: every
    /// participant in the request reaches the same verdict.
    pub fn keep(&self, trace_id: TraceId) -> bool {
        if self.rate == 1 {
            return true;
        }
        mix(trace_id.0).is_multiple_of(self.rate as u64)
    }
}

/// Adaptive sampler targeting a fixed number of kept traces per window,
/// GWP's "adaptive per-application sampling to reduce the overhead of
/// profile collecting while ensuring no critical information loss".
///
/// The keep-probability for the next window is
/// `target / max(observed_this_window, 1)`, clamped to `[min_prob, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveSampler {
    target_per_window: u64,
    min_prob: f64,
    window_observed: u64,
    window_kept: u64,
    current_prob: f64,
}

impl AdaptiveSampler {
    /// Creates an adaptive sampler that aims to keep `target_per_window`
    /// traces per window, never dropping the keep-probability below
    /// `min_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `target_per_window == 0` or `min_prob` is outside `(0, 1]`.
    pub fn new(target_per_window: u64, min_prob: f64) -> Self {
        assert!(target_per_window > 0, "target must be positive");
        assert!(
            min_prob > 0.0 && min_prob <= 1.0,
            "min_prob must be in (0, 1], got {min_prob}"
        );
        AdaptiveSampler {
            target_per_window,
            min_prob,
            window_observed: 0,
            window_kept: 0,
            current_prob: 1.0,
        }
    }

    /// Current keep-probability.
    pub fn probability(&self) -> f64 {
        self.current_prob
    }

    /// Offers one trace; returns whether it is kept. Deterministic given
    /// the trace-id sequence (the hash doubles as the uniform draw).
    pub fn offer(&mut self, trace_id: TraceId) -> bool {
        self.window_observed += 1;
        let u = mix(trace_id.0) as f64 / u64::MAX as f64;
        let keep = u < self.current_prob;
        if keep {
            self.window_kept += 1;
        }
        keep
    }

    /// Ends the current window: re-targets the keep-probability from the
    /// observed volume and resets counters. Returns `(observed, kept)` for
    /// the closed window.
    pub fn roll_window(&mut self) -> (u64, u64) {
        let stats = (self.window_observed, self.window_kept);
        let observed = self.window_observed.max(1);
        self.current_prob =
            (self.target_per_window as f64 / observed as f64).clamp(self.min_prob, 1.0);
        self.window_observed = 0;
        self.window_kept = 0;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_in_one_keeps_everything() {
        let s = Sampler::one_in(1);
        for id in 0..100 {
            assert!(s.keep(TraceId(id)));
        }
    }

    #[test]
    fn rate_is_approximately_respected() {
        let s = Sampler::one_in(100);
        let kept = (0..100_000).filter(|&id| s.keep(TraceId(id))).count();
        assert!((700..1300).contains(&kept), "kept {kept} of 100000");
    }

    #[test]
    fn decision_is_deterministic() {
        let s = Sampler::one_in(7);
        for id in 0..1000 {
            assert_eq!(s.keep(TraceId(id)), s.keep(TraceId(id)));
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rate_panics() {
        Sampler::one_in(0);
    }

    #[test]
    fn adaptive_converges_to_target() {
        let mut s = AdaptiveSampler::new(100, 1e-6);
        // Heavy load: 100k traces per window; after adaptation each window
        // keeps roughly the target.
        let mut id = 0u64;
        for window in 0..5 {
            for _ in 0..100_000 {
                s.offer(TraceId(id));
                id += 1;
            }
            let (observed, kept) = s.roll_window();
            assert_eq!(observed, 100_000);
            if window >= 1 {
                assert!((50..200).contains(&kept), "window {window} kept {kept}");
            }
        }
    }

    #[test]
    fn adaptive_keeps_all_under_light_load() {
        let mut s = AdaptiveSampler::new(1000, 1e-6);
        for id in 0..50 {
            assert!(s.offer(TraceId(id)));
        }
        let (observed, kept) = s.roll_window();
        assert_eq!((observed, kept), (50, 50));
        // Probability stays at 1 since volume < target.
        assert_eq!(s.probability(), 1.0);
    }

    #[test]
    fn adaptive_respects_min_prob() {
        let mut s = AdaptiveSampler::new(1, 0.01);
        for id in 0..10_000 {
            s.offer(TraceId(id));
        }
        s.roll_window();
        assert!(s.probability() >= 0.01);
    }

    #[test]
    #[should_panic(expected = "min_prob")]
    fn adaptive_validates_min_prob() {
        AdaptiveSampler::new(10, 0.0);
    }
}
