//! Invariant tests for the GFS simulator across randomized configurations.

use proptest::prelude::*;

use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation and well-formedness across random workloads: every
    /// request completes exactly once, record counts line up, span trees
    /// are valid, and timestamps are within the makespan.
    #[test]
    fn conservation_and_wellformedness(
        seed in 0u64..10_000,
        read_pct in 0u32..=100,
        n_chunks in 1u64..5_000,
        zipf_x10 in 5u32..15,
        sampling in prop_oneof![Just(1u32), Just(7u32), Just(50u32)],
    ) {
        let n_requests = 300u64;
        let mut config = ClusterConfig::small();
        config.trace_sampling = sampling;
        config.workload = WorkloadMix {
            read_fraction: read_pct as f64 / 100.0,
            n_chunks,
            zipf_skew: zipf_x10 as f64 / 10.0,
            // Keep load stable regardless of mix.
            mean_interarrival_secs: 0.1,
            ..WorkloadMix::mixed()
        };
        let mut cluster = Cluster::new(config).unwrap();
        let outcome = cluster.run(n_requests, seed);

        // Conservation.
        prop_assert_eq!(outcome.stats.completed, n_requests);
        prop_assert_eq!(outcome.requests.len(), n_requests as usize);
        prop_assert_eq!(outcome.trace.cpu.len(), n_requests as usize);
        // One ingress + one egress per request.
        prop_assert_eq!(outcome.trace.network.len(), 2 * n_requests as usize);
        // Memory touched exactly once per request.
        prop_assert_eq!(outcome.trace.memory.len(), n_requests as usize);
        // Disk at most once per request (cache hits skip it).
        prop_assert!(outcome.trace.storage.len() <= n_requests as usize);

        // Latencies positive; utilizations in range.
        for r in &outcome.requests {
            prop_assert!(r.latency_nanos > 0);
        }
        for u in outcome
            .stats
            .cpu_utilization
            .iter()
            .chain(&outcome.stats.disk_utilization)
        {
            prop_assert!((0.0..=1.0 + 1e-9).contains(u), "utilization {u}");
        }

        // Span trees valid and only for sampled requests.
        let sampled = outcome.requests.iter().filter(|r| r.sampled).count();
        let trees = outcome.trace.span_trees();
        prop_assert_eq!(trees.len(), sampled);
        let makespan_nanos = (outcome.stats.makespan_secs * 1e9) as u64 + 1;
        for tree in &trees {
            prop_assert!(tree.root().name == "request");
            prop_assert!(tree.root().end_nanos <= makespan_nanos);
            let phases = tree.phase_sequence();
            prop_assert!(phases.first().map(|p| *p == "network.in").unwrap_or(false));
            prop_assert!(phases.last().map(|p| *p == "network.out").unwrap_or(false));
        }
    }

    /// Replication factor never changes the number of completed requests
    /// or loses trace records.
    #[test]
    fn replication_conserves_requests(replication in 1usize..=3, seed in 0u64..1000) {
        let mut config = ClusterConfig::cluster(3);
        config.replication = replication;
        config.workload = WorkloadMix::write_heavy();
        config.workload.mean_interarrival_secs = 0.3;
        let mut cluster = Cluster::new(config).unwrap();
        let outcome = cluster.run(100, seed);
        prop_assert_eq!(outcome.stats.completed, 100);
        prop_assert_eq!(outcome.trace.storage.len(), 100); // primary writes only
    }
}
