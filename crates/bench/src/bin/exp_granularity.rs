//! EXP-J — Configurable model detail: parameters vs fidelity (§4 /
//! Table 1 "Configurability" and "Fine Granularity").
//!
//! §4: "Additional detail increases the model's complexity, and that
//! remains a trade-off dependent on the application's behavior and the
//! study of interest." We sweep KOOZA's detail knobs (LBN buckets ×
//! CPU bins), train on the same locality-rich trace, and report parameter
//! count against validation fidelity — the trade-off curve behind the
//! paper's qualitative checkmarks.

use kooza::class::assemble_observations;
use kooza::kooza::KoozaOptions;
use kooza::validate::validate;
use kooza::{Kooza, ReplayConfig, WorkloadModel};
use kooza_bench::{banner, section, EXPERIMENT_SEED};
use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};
use kooza_sim::rng::Rng64;

fn main() {
    banner("EXP-J", "Model detail (buckets × bins) vs parameters and fidelity");

    let mut config = ClusterConfig::small();
    config.workload = WorkloadMix {
        n_chunks: 500,
        zipf_skew: 1.1,
        ..WorkloadMix::read_heavy()
    };
    // Disable the RAM cache so storage locality carries the signal.
    config.memory.cache_chunks = 1;
    let outcome = Cluster::new(&config).expect("config").run(3000, EXPERIMENT_SEED);
    let observations = assemble_observations(&outcome.trace).expect("assembles");

    section("detail sweep");
    println!(
        "{:>22} {:>10} {:>14} {:>14}",
        "options", "params", "feature var", "latency var"
    );
    let sweeps = [
        ("coarse (4 × 3)", KoozaOptions::coarse()),
        ("default (64 × 10)", KoozaOptions::default()),
        ("fine (256 × 20)", KoozaOptions::fine()),
        (
            "storage-focused (512 × 5)",
            KoozaOptions { lbn_buckets: 512, cpu_bins: 5 },
        ),
    ];
    // Each sweep point trains and validates its own model from the shared
    // trace; the points fan out over kooza-exec and print in sweep order.
    let rows = kooza_exec::par_map(&sweeps, |(label, options)| {
        let model = Kooza::fit_with(&outcome.trace, *options).expect("trains");
        let mut rng = Rng64::new(EXPERIMENT_SEED + 5);
        let synthetic = model.generate(3000, &mut rng);
        let report = validate(&model, &observations, &synthetic, ReplayConfig::from(&config));
        (*label, model.parameter_count(), report)
    });
    for (label, params, report) in rows {
        println!(
            "{:>22} {:>10} {:>13.2}% {:>13.2}%",
            label,
            params,
            report.max_feature_variation(),
            report.latency_variation().unwrap_or(f64::NAN)
        );
    }
    println!(
        "\npaper claim (§4): detail is \"a trade-off dependent on the\n\
         application's behavior and the study of interest\" — and indeed it\n\
         is not monotone: parameters span three orders of magnitude, the\n\
         coarse model already nails first-order features, the default sits\n\
         at the fidelity sweet spot, and over-fine bucketing fragments the\n\
         training data enough to hurt latency fidelity again."
    );
}
