//! Statistics collectors for simulation output.
//!
//! * [`Tally`] — per-observation statistics (Welford mean/variance, min/max).
//! * [`TimeWeighted`] — time-averaged piecewise-constant signals such as
//!   queue length or busy-server count.
//! * [`Counter`] — a plain monotone event counter with rate reporting.

use crate::time::SimTime;

/// Streaming per-observation statistics using Welford's algorithm.
///
/// ```
/// use kooza_sim::Tally;
/// let mut t = Tally::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     t.record(x);
/// }
/// assert_eq!(t.mean(), 2.5);
/// assert_eq!(t.count(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tally {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Tally {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another tally into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Tally) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal.
///
/// Call [`record`](TimeWeighted::record) whenever the signal changes value;
/// the collector integrates the *previous* value over the elapsed interval.
///
/// ```
/// use kooza_sim::{SimTime, TimeWeighted};
/// let mut w = TimeWeighted::new();
/// w.record(SimTime::from_nanos(0), 2.0);   // signal becomes 2 at t=0
/// w.record(SimTime::from_nanos(10), 4.0);  // 2 held for 10ns
/// // mean over [0, 20): (2*10 + 4*10) / 20 = 3
/// assert_eq!(w.mean_until(SimTime::from_nanos(20), 4.0), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeWeighted {
    last_time: Option<SimTime>,
    last_value: f64,
    weighted_sum: f64,
    start: Option<SimTime>,
}

impl TimeWeighted {
    /// Creates an empty collector.
    pub fn new() -> Self {
        TimeWeighted::default()
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous record.
    pub fn record(&mut self, now: SimTime, value: f64) {
        if let Some(last) = self.last_time {
            assert!(now >= last, "time-weighted records must be non-decreasing in time");
            self.weighted_sum += self.last_value * (now - last).as_nanos() as f64;
        } else {
            self.start = Some(now);
        }
        self.last_time = Some(now);
        self.last_value = value;
    }

    /// Time-averaged value over `[first record, now]`, where the signal has
    /// held `current_value` since the last record. Returns 0 before any
    /// record.
    pub fn mean_until(&self, now: SimTime, current_value: f64) -> f64 {
        let (Some(start), Some(last)) = (self.start, self.last_time) else {
            return 0.0;
        };
        let tail = now.saturating_since(last).as_nanos() as f64 * current_value;
        let span = now.saturating_since(start).as_nanos() as f64;
        if span == 0.0 {
            current_value
        } else {
            (self.weighted_sum + tail) / span
        }
    }
}

/// A monotone event counter.
///
/// ```
/// use kooza_sim::{Counter, SimTime};
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// assert_eq!(c.rate_per_sec(SimTime::from_secs(2)), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter { value: 0 }
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Events per simulated second over `[0, now]`; 0 at time zero.
    pub fn rate_per_sec(&self, now: SimTime) -> f64 {
        let secs = now.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.value as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_mean_variance() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert!((t.mean() - 5.0).abs() < 1e-12);
        // Population variance of this classic set is 4; sample variance 32/7.
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(9.0));
    }

    #[test]
    fn tally_empty_is_safe() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
    }

    #[test]
    fn tally_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Tally::new();
        data.iter().for_each(|&x| whole.record(x));
        let mut a = Tally::new();
        let mut b = Tally::new();
        data[..37].iter().for_each(|&x| a.record(x));
        data[37..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn tally_merge_with_empty() {
        let mut a = Tally::new();
        a.record(1.0);
        let before = a.clone();
        a.merge(&Tally::new());
        assert_eq!(a, before);
        let mut empty = Tally::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn time_weighted_piecewise() {
        let mut w = TimeWeighted::new();
        w.record(SimTime::from_nanos(0), 1.0);
        w.record(SimTime::from_nanos(4), 3.0);
        w.record(SimTime::from_nanos(8), 0.0);
        // [0,4): 1, [4,8): 3, [8,16): 0 → (4 + 12 + 0) / 16 = 1.0
        assert_eq!(w.mean_until(SimTime::from_nanos(16), 0.0), 1.0);
    }

    #[test]
    fn time_weighted_before_any_record() {
        let w = TimeWeighted::new();
        assert_eq!(w.mean_until(SimTime::from_secs(1), 5.0), 0.0);
    }

    #[test]
    fn time_weighted_zero_span() {
        let mut w = TimeWeighted::new();
        w.record(SimTime::from_nanos(5), 7.0);
        assert_eq!(w.mean_until(SimTime::from_nanos(5), 7.0), 7.0);
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        assert_eq!(c.rate_per_sec(SimTime::ZERO), 0.0);
        c.add(10);
        assert_eq!(c.rate_per_sec(SimTime::from_secs(5)), 2.0);
    }
}
