//! The exponential distribution — the memoryless inter-arrival model behind
//! Poisson request arrivals, and the baseline the network-modeling papers
//! (Feitelson, Sengupta) show real DC traffic *diverging from*.

use kooza_sim::rng::Rng64;

use super::{assert_probability, require_positive, Distribution};
use crate::Result;

/// Exponential distribution with rate `λ` (mean `1/λ`).
///
/// ```
/// use kooza_stats::dist::{Distribution, Exponential};
/// let d = Exponential::new(2.0)?;
/// assert!((d.mean() - 0.5).abs() < 1e-12);
/// assert!((d.cdf(d.quantile(0.3)) - 0.3).abs() < 1e-12);
/// # Ok::<(), kooza_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `rate` (> 0).
    ///
    /// # Errors
    ///
    /// Returns [`crate::StatsError::InvalidParameter`] unless `rate` is
    /// finite and positive.
    pub fn new(rate: f64) -> Result<Self> {
        require_positive("rate", rate)?;
        Ok(Exponential { rate })
    }

    /// Creates the exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StatsError::InvalidParameter`] unless `mean` is
    /// finite and positive.
    pub fn with_mean(mean: f64) -> Result<Self> {
        require_positive("mean", mean)?;
        Exponential::new(1.0 / mean)
    }

    /// The rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        // -ln(1-p)/λ; at p=1 the support is unbounded.
        -(1.0 - p).ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn name(&self) -> &'static str {
        "exponential"
    }

    fn sample(&self, rng: &mut Rng64) -> f64 {
        // next_f64_open avoids ln(0).
        -rng.next_f64_open().ln() / self.rate
    }

    fn log_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn with_mean_matches() {
        let d = Exponential::with_mean(4.0).unwrap();
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert!((d.rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn pdf_cdf_known_values() {
        let d = Exponential::new(1.0).unwrap();
        assert!((d.pdf(0.0) - 1.0).abs() < 1e-12);
        assert!((d.cdf(1.0) - (1.0 - (-1f64).exp())).abs() < 1e-12);
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Exponential::new(3.0).unwrap();
        for p in [0.01, 0.25, 0.5, 0.75, 0.99] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12);
        }
        assert_eq!(d.quantile(0.0), 0.0);
    }

    #[test]
    fn sample_mean_converges() {
        let d = Exponential::new(0.5).unwrap();
        let mut rng = Rng64::new(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn memorylessness_via_cdf() {
        // P(X > s + t | X > s) == P(X > t)
        let d = Exponential::new(1.3).unwrap();
        let (s, t) = (0.7, 1.1);
        let cond = (1.0 - d.cdf(s + t)) / (1.0 - d.cdf(s));
        assert!((cond - (1.0 - d.cdf(t))).abs() < 1e-12);
    }

    #[test]
    fn log_pdf_matches_pdf() {
        let d = Exponential::new(2.5).unwrap();
        for x in [0.0, 0.5, 2.0] {
            assert!((d.log_pdf(x) - d.pdf(x).ln()).abs() < 1e-12);
        }
        assert_eq!(d.log_pdf(-0.1), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "p in [0,1]")]
    fn quantile_rejects_out_of_range() {
        Exponential::new(1.0).unwrap().quantile(1.5);
    }
}
