//! Closed-network analysis: exact Mean Value Analysis (MVA) and the
//! Kingman G/G/1 approximation.
//!
//! The surveyed literature leans on both: closed queueing networks are the
//! "current applications of VU-lists" (Luthi) and the backbone of
//! interactive-user models (a fixed population cycling think → service),
//! while Kingman's formula is the standard bridge from *measured*
//! arrival/service variability (the characterization outputs of
//! [`crate::sqs`] and `kooza-trace`) to waiting-time predictions without
//! assuming Poisson anything.

use crate::{QueueError, Result};

/// Result of an exact MVA solve.
#[derive(Debug, Clone, PartialEq)]
pub struct MvaSolution {
    /// System throughput, customers/second.
    pub throughput: f64,
    /// Mean response time per cycle across all stations (excluding think
    /// time), seconds.
    pub response_secs: f64,
    /// Per-station mean queue lengths (jobs, including in service).
    pub queue_lengths: Vec<f64>,
    /// Per-station utilizations.
    pub utilizations: Vec<f64>,
}

/// Exact MVA for a closed product-form network of single-server FIFO
/// stations plus an (optional) infinite-server think station.
///
/// * `n_customers` — the fixed population.
/// * `think_secs` — mean think time (0 for a batch system).
/// * `demands_secs` — per-station service demand per cycle
///   (visit ratio × service time).
///
/// # Errors
///
/// Returns [`QueueError::InvalidParameter`] for zero customers, negative
/// times, or an empty station list.
///
/// ```
/// use kooza_queueing::mva::closed_mva;
/// // One customer, 1 s think, one 0.5 s station: cycle = 1.5 s.
/// let s = closed_mva(1, 1.0, &[0.5])?;
/// assert!((s.throughput - 1.0 / 1.5).abs() < 1e-12);
/// assert!((s.response_secs - 0.5).abs() < 1e-12);
/// # Ok::<(), kooza_queueing::QueueError>(())
/// ```
pub fn closed_mva(n_customers: usize, think_secs: f64, demands_secs: &[f64]) -> Result<MvaSolution> {
    if n_customers == 0 {
        return Err(QueueError::InvalidParameter { name: "n_customers", value: 0.0 });
    }
    if !(think_secs.is_finite() && think_secs >= 0.0) {
        return Err(QueueError::InvalidParameter { name: "think_secs", value: think_secs });
    }
    if demands_secs.is_empty() {
        return Err(QueueError::InvalidTopology("MVA needs at least one station".into()));
    }
    for &d in demands_secs {
        if !(d.is_finite() && d > 0.0) {
            return Err(QueueError::InvalidParameter { name: "demand", value: d });
        }
    }
    let k = demands_secs.len();
    let mut queue = vec![0.0f64; k];
    let mut throughput = 0.0;
    let mut response = 0.0;
    for n in 1..=n_customers {
        // Arrival theorem: an arriving customer sees the queue of the
        // network with one fewer customer.
        let residence: Vec<f64> = demands_secs
            .iter()
            .zip(&queue)
            .map(|(&d, &q)| d * (1.0 + q))
            .collect();
        response = residence.iter().sum();
        throughput = n as f64 / (think_secs + response);
        for i in 0..k {
            queue[i] = throughput * residence[i];
        }
    }
    let utilizations = demands_secs.iter().map(|&d| throughput * d).collect();
    Ok(MvaSolution {
        throughput,
        response_secs: response,
        queue_lengths: queue,
        utilizations,
    })
}

/// Kingman's G/G/1 waiting-time approximation:
/// `Wq ≈ (ρ / (1 − ρ)) · ((Ca² + Cs²) / 2) · E[S]`.
///
/// `ca2`/`cs2` are the squared coefficients of variation of inter-arrival
/// and service times — exactly what trace characterization produces.
///
/// # Errors
///
/// Returns [`QueueError::Unstable`] when `ρ ≥ 1`, or parameter errors.
///
/// ```
/// use kooza_queueing::analytic::mm1;
/// use kooza_queueing::mva::kingman_gg1;
/// // With Ca² = Cs² = 1 (M/M/1), Kingman is exact.
/// let approx = kingman_gg1(8.0, 1.0, 0.1, 1.0)?;
/// let exact = mm1(8.0, 10.0)?;
/// assert!((approx - exact.mean_wait).abs() < 1e-12);
/// # Ok::<(), kooza_queueing::QueueError>(())
/// ```
pub fn kingman_gg1(lambda: f64, ca2: f64, service_mean: f64, cs2: f64) -> Result<f64> {
    for (name, v) in [("lambda", lambda), ("service_mean", service_mean)] {
        if !(v.is_finite() && v > 0.0) {
            return Err(QueueError::InvalidParameter { name, value: v });
        }
    }
    for (name, v) in [("ca2", ca2), ("cs2", cs2)] {
        if !(v.is_finite() && v >= 0.0) {
            return Err(QueueError::InvalidParameter { name, value: v });
        }
    }
    let rho = lambda * service_mean;
    if rho >= 1.0 {
        return Err(QueueError::Unstable { rho });
    }
    Ok(rho / (1.0 - rho) * (ca2 + cs2) / 2.0 * service_mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{ArrivalProcess, PoissonArrivals, RenewalArrivals};
    use crate::network::{simulate, NetworkConfig, NodeConfig};
    use kooza_sim::rng::Rng64;
    use kooza_stats::dist::{Distribution, Exponential, LogNormal};

    #[test]
    fn single_customer_cycle_time() {
        let s = closed_mva(1, 2.0, &[0.5, 0.3]).unwrap();
        // Cycle = think + demands; no queueing with one customer.
        assert!((s.throughput - 1.0 / 2.8).abs() < 1e-12);
        assert!((s.response_secs - 0.8).abs() < 1e-12);
        for (q, u) in s.queue_lengths.iter().zip(&s.utilizations) {
            assert!(*q < 1.0);
            assert!(*u < 1.0);
        }
    }

    #[test]
    fn throughput_saturates_at_bottleneck() {
        // Bottleneck demand 0.1 s → asymptotic throughput 10/s.
        let demands = [0.1, 0.05];
        let s = closed_mva(200, 1.0, &demands).unwrap();
        assert!((s.throughput - 10.0).abs() < 0.01, "tput {}", s.throughput);
        assert!(s.utilizations[0] > 0.99);
    }

    #[test]
    fn throughput_monotone_in_population() {
        let demands = [0.08, 0.02];
        let mut prev = 0.0;
        for n in 1..=50 {
            let s = closed_mva(n, 0.5, &demands).unwrap();
            assert!(s.throughput >= prev - 1e-12, "n={n}");
            prev = s.throughput;
        }
    }

    #[test]
    fn mva_matches_mm1_open_limit() {
        // Large population with long think time approximates an open M/M/1
        // at λ = N / (Z + R). Check self-consistency of the fixed point.
        let s = closed_mva(50, 10.0, &[0.05]).unwrap();
        let lambda = s.throughput;
        let rho = lambda * 0.05;
        assert!(rho < 1.0);
        let open_r = 0.05 / (1.0 - rho);
        assert!(
            (s.response_secs - open_r).abs() / open_r < 0.05,
            "MVA {} vs open {}",
            s.response_secs,
            open_r
        );
    }

    #[test]
    fn mva_validation() {
        assert!(closed_mva(0, 1.0, &[0.1]).is_err());
        assert!(closed_mva(1, -1.0, &[0.1]).is_err());
        assert!(closed_mva(1, 1.0, &[]).is_err());
        assert!(closed_mva(1, 1.0, &[0.0]).is_err());
    }

    #[test]
    fn kingman_exact_for_mm1() {
        use crate::analytic::mm1;
        for lambda in [1.0, 4.0, 8.0] {
            let approx = kingman_gg1(lambda, 1.0, 0.1, 1.0).unwrap();
            let exact = mm1(lambda, 10.0).unwrap().mean_wait;
            assert!((approx - exact).abs() < 1e-12);
        }
    }

    #[test]
    fn kingman_tracks_simulated_gg1() {
        // Lognormal service (cs² from the distribution), Poisson arrivals.
        let service = LogNormal::new(-3.2, 0.6).unwrap();
        let cs2 = service.variance() / (service.mean() * service.mean());
        let lambda = 12.0;
        let approx = kingman_gg1(lambda, 1.0, service.mean(), cs2).unwrap();
        let config = NetworkConfig::tandem(vec![NodeConfig {
            name: "g".into(),
            servers: 1,
            service: Box::new(service),
        }]);
        let mut arrivals = PoissonArrivals::new(lambda).unwrap();
        let mut rng = Rng64::new(1800);
        let res = simulate(&config, &mut arrivals, 150_000, &mut rng).unwrap();
        let sim_wait = res.nodes[0].mean_wait_secs;
        assert!(
            (approx - sim_wait).abs() / sim_wait < 0.1,
            "kingman {approx} vs sim {sim_wait}"
        );
    }

    #[test]
    fn kingman_penalizes_variability() {
        let smooth = kingman_gg1(8.0, 0.2, 0.1, 0.2).unwrap();
        let bursty = kingman_gg1(8.0, 4.0, 0.1, 4.0).unwrap();
        assert!(bursty > 10.0 * smooth);
    }

    #[test]
    fn kingman_validation() {
        assert!(kingman_gg1(10.0, 1.0, 0.1, 1.0).is_err()); // rho = 1
        assert!(kingman_gg1(0.0, 1.0, 0.1, 1.0).is_err());
        assert!(kingman_gg1(1.0, -1.0, 0.1, 1.0).is_err());
    }

    #[test]
    fn kingman_works_with_measured_cv2() {
        // End-to-end with characterization: measure ca² from generated
        // gaps, cs² from service samples, and predict.
        let mut gaps_src =
            RenewalArrivals::new(Box::new(Exponential::with_mean(0.02).unwrap()));
        let mut rng = Rng64::new(1801);
        let gaps: Vec<f64> = (0..20_000).map(|_| gaps_src.next_gap(&mut rng)).collect();
        let ca2 = kooza_stats::summary::burstiness_cv2(&gaps).unwrap();
        let service = Exponential::with_mean(0.01).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| service.sample(&mut rng)).collect();
        let mean_s = samples.iter().sum::<f64>() / samples.len() as f64;
        let cs2 = kooza_stats::summary::burstiness_cv2(&samples).unwrap();
        let w = kingman_gg1(1.0 / 0.02, ca2, mean_s, cs2).unwrap();
        // Exact M/M/1 Wq = rho/(mu - lambda) = 0.5/(100-50) = 0.01.
        assert!((w - 0.01).abs() < 0.002, "w = {w}");
    }
}
