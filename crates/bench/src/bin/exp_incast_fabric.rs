//! EXP-N — the oversubscribed-uplink regime: where the queueing
//! abstraction stops tracking the cluster.
//!
//! The paper's cross-examination pits trace-trained workload models
//! against each other on regimes their structure can or cannot express.
//! This experiment does the same for the *network* abstraction. A
//! per-server queueing model (kooza-queueing M/G/1, parameterized from
//! light-load service times — exactly what one would fit from a
//! single-server trace) treats every chunkserver as an independent
//! station with a private, fixed-capacity link. The shared-bandwidth
//! fabric (`--topology rack:4:2`) routes the same requests over real
//! rack uplinks carrying only half the hosts' aggregate bandwidth.
//!
//! The workload is built to be network-bound (4 MB streaming reads off
//! fast disks), and the sweep holds every *per-server* utilization under
//! one while the *shared uplink* utilization crosses one. The M/G/1 and
//! the ideal-link simulation agree throughout — they share the
//! independent-station assumption. The fabric run departs super-linearly
//! the moment the uplinks saturate: a regime the per-server view is not
//! imprecise about but structurally blind to.

use kooza_bench::{banner, section, EXPERIMENT_SEED};
use kooza_gfs::{Cluster, ClusterConfig, DiskParams, Topology, WorkloadMix};
use kooza_queueing::analytic::mg1;

const SERVERS: usize = 16;
const REQUESTS: u64 = 3_000;

/// Network-bound cluster: 4 MB streaming reads, SSD-class disks, so the
/// per-request service time is dominated by the 1 GbE egress link.
fn config(topology: Topology, mean_interarrival_secs: f64) -> ClusterConfig {
    let mut config = ClusterConfig::cluster(SERVERS);
    config.disk = DiskParams {
        seek_base_secs: 50e-6,
        seek_full_secs: 100e-6,
        transfer_bytes_per_sec: 2e9,
        ..DiskParams::default()
    };
    config.workload = WorkloadMix {
        read_size: 4 * 1024 * 1024,
        n_chunks: 4_000,
        mean_interarrival_secs,
        ..WorkloadMix::read_heavy()
    };
    config.topology = topology;
    config
}

/// Mean end-to-end latency (seconds) of a simulated run.
fn simulate(topology: Topology, interarrival: f64) -> f64 {
    let cfg = config(topology, interarrival);
    let outcome = Cluster::new(&cfg).expect("valid config").run(REQUESTS, EXPERIMENT_SEED);
    let n = outcome.requests.len().max(1) as f64;
    outcome.requests.iter().map(|r| r.latency_nanos as f64).sum::<f64>() / n / 1e9
}

fn main() {
    banner("EXP-N", "cross-examining the network abstraction: M/G/1 vs shared fabric");

    let rack = Topology::Rack { servers_per_rack: 4, oversub: 2.0 };

    // Parameterize the per-server M/G/1 from a light-load run — the
    // same calibration a modeler with a single-server trace would do.
    let light_latency = simulate(Topology::None, 0.02);
    let scv = 0.2; // near-deterministic 4 MB streaming service
    section(&format!(
        "calibration at light load: mean service {:.3} ms per 4 MB read",
        light_latency * 1e3
    ));

    println!(
        "\n{:>14} {:>12} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "interarrival", "rho/server", "rho/uplink", "M/G/1 (ms)", "ideal sim (ms)", "fabric (ms)", "fabric/MG1"
    );
    for &interarrival in &[0.0094f64, 0.007, 0.0047, 0.0038, 0.003] {
        let lambda_server = 1.0 / interarrival / SERVERS as f64;
        let rho_server = lambda_server * light_latency;
        // Four hosts share a rack uplink of twice the host bandwidth, so
        // the shared link runs at double the per-server utilization.
        let rho_uplink = 2.0 * rho_server;
        let predicted = mg1(lambda_server, light_latency, scv)
            .map(|m| m.mean_response)
            .unwrap_or(f64::INFINITY);
        let ideal = simulate(Topology::None, interarrival);
        let fabric = simulate(rack, interarrival);
        println!(
            "{:>12} s {:>12.2} {:>12.2} {:>12.1} {:>14.1} {:>14.1} {:>11.1}x",
            interarrival,
            rho_server,
            rho_uplink,
            predicted * 1e3,
            ideal * 1e3,
            fabric * 1e3,
            fabric / predicted
        );
    }

    println!(
        "\ncross-examination verdict: below uplink saturation all three\n\
         columns agree. Past rho/uplink = 1 the per-server M/G/1 and the\n\
         ideal-link simulation stay glued together — every station they\n\
         can see is still under-utilized — while the shared-fabric runs\n\
         depart by an order of magnitude. A workload model that never\n\
         records which machines share a bottleneck cannot predict this\n\
         regime, however well its per-station marginals fit: the same\n\
         structural argument the paper makes for request-id-aware models\n\
         and the TCP/IP incast effect."
    );
}
