//! Clustering: k-means (k-means++ seeding) and model-based clustering via a
//! diagonal-covariance Gaussian mixture fitted with EM.
//!
//! Li's grid-workload methodology uses *model-based clustering* as phase 1
//! of synthetic-workload generation: cluster the joint feature space, then
//! fit per-cluster marginals. [`GaussianMixture`] is that tool;
//! [`kmeans`] is both its initializer and a baseline.

use kooza_sim::rng::Rng64;

use crate::{Result, StatsError};

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per input row.
    pub assignments: Vec<usize>,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn validate_rows(rows: &[Vec<f64>], k: usize) -> Result<usize> {
    if k == 0 {
        return Err(StatsError::InvalidInput("k must be positive".into()));
    }
    if rows.len() < k {
        return Err(StatsError::InsufficientData { needed: k, got: rows.len() });
    }
    let dim = rows[0].len();
    if dim == 0 {
        return Err(StatsError::InvalidInput("rows must be non-empty".into()));
    }
    for row in rows {
        if row.len() != dim {
            return Err(StatsError::InvalidInput("ragged rows".into()));
        }
        if !row.iter().all(|x| x.is_finite()) {
            return Err(StatsError::NonFiniteData);
        }
    }
    Ok(dim)
}

/// k-means with k-means++ seeding and Lloyd iterations.
///
/// # Errors
///
/// Errors on `k == 0`, fewer rows than clusters, ragged or non-finite rows.
///
/// ```
/// use kooza_sim::rng::Rng64;
/// use kooza_stats::cluster::kmeans;
/// let rows = vec![
///     vec![0.0, 0.1], vec![0.1, 0.0], vec![0.05, 0.05],
///     vec![9.0, 9.1], vec![9.1, 9.0], vec![8.95, 9.05],
/// ];
/// let result = kmeans(&rows, 2, 100, &mut Rng64::new(1))?;
/// assert_eq!(result.assignments[0], result.assignments[1]);
/// assert_ne!(result.assignments[0], result.assignments[3]);
/// # Ok::<(), kooza_stats::StatsError>(())
/// ```
pub fn kmeans(rows: &[Vec<f64>], k: usize, max_iter: usize, rng: &mut Rng64) -> Result<KMeans> {
    let dim = validate_rows(rows, k)?;
    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(rows[rng.next_bounded(rows.len() as u64) as usize].clone());
    while centroids.len() < k {
        let weights: Vec<f64> = rows
            .iter()
            .map(|r| {
                centroids
                    .iter()
                    .map(|c| sq_dist(r, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let idx = if total > 0.0 {
            rng.choose_weighted(&weights)
        } else {
            rng.next_bounded(rows.len() as u64) as usize
        };
        centroids.push(rows[idx].clone());
    }

    let mut assignments = vec![0usize; rows.len()];
    let mut iterations = 0;
    for iter in 0..max_iter.max(1) {
        iterations = iter + 1;
        // Assign.
        let mut changed = false;
        for (i, row) in rows.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    sq_dist(row, &centroids[a])
                        .partial_cmp(&sq_dist(row, &centroids[b]))
                        .unwrap()
                })
                .unwrap();
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (row, &a) in rows.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &v) in sums[a].iter_mut().zip(row) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            } else {
                // Re-seed an empty cluster at the point farthest from its centroid.
                let far = rows
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        sq_dist(a, &centroids[assignments[0]])
                            .partial_cmp(&sq_dist(b, &centroids[assignments[0]]))
                            .unwrap()
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                centroids[c] = rows[far].clone();
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }
    let inertia = rows
        .iter()
        .zip(&assignments)
        .map(|(r, &a)| sq_dist(r, &centroids[a]))
        .sum();
    Ok(KMeans {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

/// A diagonal-covariance Gaussian mixture model fitted by EM.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianMixture {
    /// Mixing weights, one per component (sum to 1).
    pub weights: Vec<f64>,
    /// Component means.
    pub means: Vec<Vec<f64>>,
    /// Component per-dimension variances.
    pub variances: Vec<Vec<f64>>,
    /// Final mean log-likelihood per observation.
    pub log_likelihood: f64,
    /// EM iterations executed.
    pub iterations: usize,
}

impl GaussianMixture {
    /// Fits a `k`-component diagonal GMM with EM, initialized from k-means.
    ///
    /// # Errors
    ///
    /// Same validation as [`kmeans`].
    pub fn fit(rows: &[Vec<f64>], k: usize, max_iter: usize, rng: &mut Rng64) -> Result<Self> {
        let dim = validate_rows(rows, k)?;
        let n = rows.len();
        let km = kmeans(rows, k, 50, rng)?;

        let mut weights = vec![0.0f64; k];
        let mut means = km.centroids.clone();
        let mut variances = vec![vec![0.0f64; dim]; k];
        // Initialize from the k-means partition.
        let mut counts = vec![0usize; k];
        for (row, &a) in rows.iter().zip(&km.assignments) {
            counts[a] += 1;
            for d in 0..dim {
                let diff = row[d] - means[a][d];
                variances[a][d] += diff * diff;
            }
        }
        let global_var = {
            let gm: Vec<f64> = (0..dim)
                .map(|d| rows.iter().map(|r| r[d]).sum::<f64>() / n as f64)
                .collect();
            (0..dim)
                .map(|d| rows.iter().map(|r| (r[d] - gm[d]).powi(2)).sum::<f64>() / n as f64)
                .collect::<Vec<f64>>()
        };
        for c in 0..k {
            weights[c] = (counts[c] as f64 / n as f64).max(1e-6);
            for d in 0..dim {
                variances[c][d] = if counts[c] > 1 {
                    (variances[c][d] / counts[c] as f64).max(1e-9)
                } else {
                    global_var[d].max(1e-9)
                };
            }
        }

        let log_density = |row: &[f64], mean: &[f64], var: &[f64]| -> f64 {
            let mut acc = 0.0;
            for d in 0..row.len() {
                let z = (row[d] - mean[d]).powi(2) / var[d];
                acc += -0.5 * (z + var[d].ln() + (2.0 * std::f64::consts::PI).ln());
            }
            acc
        };

        let mut resp = vec![vec![0.0f64; k]; n];
        let mut ll_prev = f64::NEG_INFINITY;
        let mut log_likelihood = ll_prev;
        let mut iterations = 0;
        for iter in 0..max_iter.max(1) {
            iterations = iter + 1;
            // E-step.
            let mut ll = 0.0;
            for (i, row) in rows.iter().enumerate() {
                let logs: Vec<f64> = (0..k)
                    .map(|c| weights[c].ln() + log_density(row, &means[c], &variances[c]))
                    .collect();
                let m = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let sum_exp: f64 = logs.iter().map(|l| (l - m).exp()).sum();
                let log_total = m + sum_exp.ln();
                ll += log_total;
                for c in 0..k {
                    resp[i][c] = (logs[c] - log_total).exp();
                }
            }
            log_likelihood = ll / n as f64;
            // M-step.
            for c in 0..k {
                let nk: f64 = resp.iter().map(|r| r[c]).sum();
                if nk < 1e-9 {
                    continue;
                }
                weights[c] = nk / n as f64;
                for d in 0..dim {
                    let mu = rows
                        .iter()
                        .zip(&resp)
                        .map(|(row, r)| r[c] * row[d])
                        .sum::<f64>()
                        / nk;
                    means[c][d] = mu;
                }
                for d in 0..dim {
                    let var = rows
                        .iter()
                        .zip(&resp)
                        .map(|(row, r)| r[c] * (row[d] - means[c][d]).powi(2))
                        .sum::<f64>()
                        / nk;
                    variances[c][d] = var.max(1e-9);
                }
            }
            if (log_likelihood - ll_prev).abs() < 1e-9 {
                break;
            }
            ll_prev = log_likelihood;
        }
        Ok(GaussianMixture {
            weights,
            means,
            variances,
            log_likelihood,
            iterations,
        })
    }

    /// Number of components.
    pub fn n_components(&self) -> usize {
        self.weights.len()
    }

    /// Most likely component for an observation.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch.
    pub fn classify(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.means[0].len(), "dimension mismatch");
        (0..self.weights.len())
            .max_by(|&a, &b| {
                self.log_responsibility(row, a)
                    .partial_cmp(&self.log_responsibility(row, b))
                    .unwrap()
            })
            .unwrap()
    }

    fn log_responsibility(&self, row: &[f64], c: usize) -> f64 {
        let mut acc = self.weights[c].ln();
        for d in 0..row.len() {
            let var = self.variances[c][d];
            acc += -0.5
                * ((row[d] - self.means[c][d]).powi(2) / var
                    + var.ln()
                    + (2.0 * std::f64::consts::PI).ln());
        }
        acc
    }

    /// Draws a synthetic observation from the mixture.
    pub fn sample(&self, rng: &mut Rng64) -> Vec<f64> {
        let c = rng.choose_weighted(&self.weights);
        self.means[c]
            .iter()
            .zip(&self.variances[c])
            .map(|(&m, &v)| {
                let u1 = rng.next_f64_open();
                let u2 = rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                m + v.sqrt() * z
            })
            .collect()
    }

    /// Bayesian information criterion (lower is better): −2·LL·n + p·ln n.
    pub fn bic(&self, n: usize) -> f64 {
        let k = self.weights.len();
        let dim = self.means[0].len();
        let params = (k - 1) + k * dim * 2;
        -2.0 * self.log_likelihood * n as f64 + params as f64 * (n as f64).ln()
    }
}

/// Chooses the number of GMM components in `1..=max_k` minimizing BIC —
/// the standard model-based-clustering selection rule.
///
/// # Errors
///
/// Propagates fitting errors if *every* candidate fails.
pub fn select_components(
    rows: &[Vec<f64>],
    max_k: usize,
    rng: &mut Rng64,
) -> Result<GaussianMixture> {
    let mut best: Option<GaussianMixture> = None;
    let mut best_bic = f64::INFINITY;
    let mut last_err = None;
    for k in 1..=max_k.max(1) {
        match GaussianMixture::fit(rows, k, 200, rng) {
            Ok(gmm) => {
                let bic = gmm.bic(rows.len());
                if bic < best_bic {
                    best_bic = bic;
                    best = Some(gmm);
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    best.ok_or_else(|| last_err.unwrap_or(StatsError::InvalidInput("no viable k".into())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(n_each: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Rng64::new(seed);
        let mut rows = Vec::new();
        for _ in 0..n_each {
            rows.push(vec![rng.next_f64(), rng.next_f64()]);
            rows.push(vec![10.0 + rng.next_f64(), 10.0 + rng.next_f64()]);
        }
        rows
    }

    #[test]
    fn kmeans_separates_blobs() {
        let rows = two_blobs(50, 600);
        let mut rng = Rng64::new(601);
        let km = kmeans(&rows, 2, 100, &mut rng).unwrap();
        // Even-indexed rows are blob A, odd blob B.
        let a = km.assignments[0];
        let b = km.assignments[1];
        assert_ne!(a, b);
        for (i, &asg) in km.assignments.iter().enumerate() {
            assert_eq!(asg, if i % 2 == 0 { a } else { b }, "row {i}");
        }
    }

    #[test]
    fn kmeans_inertia_decreases_with_k() {
        let rows = two_blobs(30, 602);
        let mut rng = Rng64::new(603);
        let i1 = kmeans(&rows, 1, 100, &mut rng).unwrap().inertia;
        let i2 = kmeans(&rows, 2, 100, &mut rng).unwrap().inertia;
        let i4 = kmeans(&rows, 4, 100, &mut rng).unwrap().inertia;
        assert!(i2 < i1);
        assert!(i4 <= i2);
    }

    #[test]
    fn kmeans_validates_input() {
        let mut rng = Rng64::new(604);
        assert!(kmeans(&[], 1, 10, &mut rng).is_err());
        assert!(kmeans(&[vec![1.0]], 0, 10, &mut rng).is_err());
        assert!(kmeans(&[vec![1.0]], 2, 10, &mut rng).is_err());
        assert!(kmeans(&[vec![1.0], vec![1.0, 2.0]], 1, 10, &mut rng).is_err());
        assert!(kmeans(&[vec![f64::NAN], vec![1.0]], 1, 10, &mut rng).is_err());
    }

    #[test]
    fn gmm_recovers_mixture_structure() {
        let rows = two_blobs(100, 605);
        let mut rng = Rng64::new(606);
        let gmm = GaussianMixture::fit(&rows, 2, 200, &mut rng).unwrap();
        // Weights near 0.5 each.
        assert!((gmm.weights[0] - 0.5).abs() < 0.05, "{:?}", gmm.weights);
        // One mean near (0.5, 0.5), the other near (10.5, 10.5).
        let near = |m: &Vec<f64>, t: f64| (m[0] - t).abs() < 0.3 && (m[1] - t).abs() < 0.3;
        assert!(
            (near(&gmm.means[0], 0.5) && near(&gmm.means[1], 10.5))
                || (near(&gmm.means[1], 0.5) && near(&gmm.means[0], 10.5)),
            "{:?}",
            gmm.means
        );
    }

    #[test]
    fn gmm_classify_consistent_with_means() {
        let rows = two_blobs(50, 607);
        let mut rng = Rng64::new(608);
        let gmm = GaussianMixture::fit(&rows, 2, 200, &mut rng).unwrap();
        let c_low = gmm.classify(&[0.5, 0.5]);
        let c_high = gmm.classify(&[10.5, 10.5]);
        assert_ne!(c_low, c_high);
    }

    #[test]
    fn gmm_sampling_reflects_mixture() {
        let rows = two_blobs(100, 609);
        let mut rng = Rng64::new(610);
        let gmm = GaussianMixture::fit(&rows, 2, 200, &mut rng).unwrap();
        let mut low = 0;
        let mut high = 0;
        for _ in 0..1000 {
            let s = gmm.sample(&mut rng);
            if s[0] < 5.0 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > 300 && high > 300, "low {low} high {high}");
    }

    #[test]
    fn bic_selects_two_components_for_two_blobs() {
        let rows = two_blobs(80, 611);
        let mut rng = Rng64::new(612);
        let gmm = select_components(&rows, 4, &mut rng).unwrap();
        assert_eq!(gmm.n_components(), 2, "picked {}", gmm.n_components());
    }

    #[test]
    fn gmm_log_likelihood_improves_over_iterations() {
        let rows = two_blobs(60, 613);
        let mut rng_a = Rng64::new(614);
        let short = GaussianMixture::fit(&rows, 2, 1, &mut rng_a).unwrap();
        let mut rng_b = Rng64::new(614);
        let long = GaussianMixture::fit(&rows, 2, 100, &mut rng_b).unwrap();
        assert!(long.log_likelihood >= short.log_likelihood - 1e-9);
    }
}
