//! The quantitative cross-examination behind the paper's Table 1.
//!
//! The paper scores in-breadth, in-depth and KOOZA qualitatively on seven
//! criteria. This harness computes the measurable ones on a common
//! workload and derives the checkmarks:
//!
//! * **Request features** — mean relative error of per-subsystem feature
//!   means (network size, CPU busy, memory size, storage size).
//! * **Time dependencies** — two-sample KS distance between the original
//!   latency distribution and the replayed synthetic latency distribution
//!   (mis-ordered or de-correlated phases distort per-request latency).
//! * **Ease-of-use** — trained parameter count (the paper: "f(Model
//!   Complexity)").
//! * **Completeness** — both of the first two.

use kooza_sim::rng::Rng64;
use kooza_stats::ks::ks_two_sample;

use crate::class::RequestObservation;
use crate::replay::{replay_loaded_latency_secs, ReplayConfig};
use crate::WorkloadModel;

/// Feature-fidelity threshold (mean relative error) for a ✓.
pub const FEATURE_ERROR_CHECK: f64 = 0.05;
/// Latency-distribution KS threshold for a ✓.
pub const LATENCY_KS_CHECK: f64 = 0.15;

/// One model's scores.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossExamRow {
    /// Model name.
    pub model: String,
    /// Mean relative error of feature means (0 = perfect, 1 = absent).
    pub feature_error: f64,
    /// KS statistic between original and synthetic latency distributions.
    pub latency_ks: f64,
    /// Trained free-parameter count.
    pub parameter_count: usize,
    /// Declared: models per-subsystem request features.
    pub claims_features: bool,
    /// Declared: models execution structure.
    pub claims_time_deps: bool,
}

impl CrossExamRow {
    /// Measured ✓ on request features.
    pub fn features_check(&self) -> bool {
        self.feature_error < FEATURE_ERROR_CHECK
    }

    /// Measured ✓ on time dependencies.
    pub fn time_deps_check(&self) -> bool {
        self.latency_ks < LATENCY_KS_CHECK
    }

    /// Measured ✓ on completeness (both).
    pub fn completeness_check(&self) -> bool {
        self.features_check() && self.time_deps_check()
    }
}

/// The full cross-examination result.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossExamTable {
    /// One row per model.
    pub rows: Vec<CrossExamRow>,
}

impl CrossExamTable {
    /// Renders the Table-1-style checkmark table plus the measured numbers.
    pub fn render(&self) -> String {
        let mark = |b: bool| if b { "✓" } else { "✗" };
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>14} {:>12} {:>10} {:>9} {:>9} {:>13}\n",
            "Model", "FeatureErr", "LatencyKS", "Params", "Features", "TimeDeps", "Completeness"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>13.1}% {:>12.4} {:>10} {:>9} {:>9} {:>13}\n",
                r.model,
                r.feature_error * 100.0,
                r.latency_ks,
                r.parameter_count,
                mark(r.features_check()),
                mark(r.time_deps_check()),
                mark(r.completeness_check()),
            ));
        }
        out
    }
}

fn mean<I: Iterator<Item = f64>>(iter: I) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for x in iter {
        sum += x;
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

fn feature_error(observations: &[RequestObservation], synth: &[crate::SyntheticRequest]) -> f64 {
    let mut errors = Vec::new();
    let rel = |orig: Option<f64>, gen: Option<f64>| -> Option<f64> {
        match (orig, gen) {
            (Some(o), Some(g)) if o != 0.0 => Some(((g - o) / o).abs().min(1.0)),
            (Some(_), None) => Some(1.0), // feature absent from the model
            _ => None,
        }
    };
    // Network payload size.
    if let Some(e) = rel(
        mean(
            observations
                .iter()
                .map(|o| o.network_in_bytes.max(o.network_out_bytes) as f64),
        ),
        mean(synth.iter().map(|r| r.payload_bytes() as f64)).filter(|&m| m > 0.0),
    ) {
        errors.push(e);
    }
    // CPU busy.
    if let Some(e) = rel(
        mean(observations.iter().map(|o| o.cpu_busy_nanos as f64)),
        mean(synth.iter().map(|r| r.cpu_busy_nanos() as f64)).filter(|&m| m > 0.0),
    ) {
        errors.push(e);
    }
    // Memory bytes per request (zero when untouched).
    if let Some(e) = rel(
        mean(observations.iter().map(|o| o.memory.iter().map(|m| m.1 as f64).sum::<f64>())),
        {
            let m = mean(
                synth
                    .iter()
                    .map(|r| r.memory_demand().map(|(b, _)| b as f64).unwrap_or(0.0)),
            );
            m.filter(|&v| v > 0.0)
        },
    ) {
        errors.push(e);
    }
    // Disk bytes per request (zero when untouched — this is where the
    // structure-blind model overshoots on cached workloads).
    if let Some(e) = rel(
        mean(observations.iter().map(|o| o.storage.iter().map(|s| s.1 as f64).sum::<f64>())),
        {
            let m = mean(
                synth
                    .iter()
                    .map(|r| r.disk_demand().map(|(b, _)| b as f64).unwrap_or(0.0)),
            );
            m.filter(|&v| v > 0.0)
        },
    ) {
        errors.push(e);
    }
    mean(errors.into_iter()).unwrap_or(1.0)
}

/// Cross-examines models on a common set of observations: each generates
/// `n_synthetic` requests (seeded per model for reproducibility), features
/// are compared, and latency distributions are compared after replay.
///
/// The model families are examined concurrently (generation, replay and
/// scoring are independent per model); every model seeds its own
/// `Rng64::new(seed)` and rows come back in `models` order, so the table
/// is bit-identical at any thread count.
pub fn cross_examine(
    models: &[&dyn WorkloadModel],
    observations: &[RequestObservation],
    replay_config: ReplayConfig,
    n_synthetic: usize,
    seed: u64,
) -> CrossExamTable {
    kooza_obs::global::counter_add("crossexam.models", models.len() as u64);
    kooza_obs::global::counter_add("crossexam.observations", observations.len() as u64);
    kooza_obs::global::stage("crossexam", || {
        cross_examine_impl(models, observations, replay_config, n_synthetic, seed)
    })
}

fn cross_examine_impl(
    models: &[&dyn WorkloadModel],
    observations: &[RequestObservation],
    replay_config: ReplayConfig,
    n_synthetic: usize,
    seed: u64,
) -> CrossExamTable {
    let original_latency: Vec<f64> = observations
        .iter()
        .map(|o| o.latency_nanos as f64 / 1e9)
        .collect();
    let rows = kooza_exec::par_map(models, |model| {
        let mut rng = Rng64::new(seed);
        let synth = model.generate(n_synthetic, &mut rng);
        let replayed = replay_loaded_latency_secs(&synth, replay_config);
        let latency_ks = ks_two_sample(&original_latency, &replayed)
            .map(|t| t.statistic)
            .unwrap_or(1.0);
        CrossExamRow {
            model: model.name().to_string(),
            feature_error: feature_error(observations, &synth),
            latency_ks,
            parameter_count: model.parameter_count(),
            claims_features: model.captures_request_features(),
            claims_time_deps: model.captures_time_dependencies(),
        }
    });
    CrossExamTable { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::assemble_observations;
    use crate::{InBreadthModel, InDepthModel, Kooza};
    use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};

    /// The canonical cross-exam workload: mixed reads/writes over a warm
    /// working set, so both correlations and cache structure matter.
    fn setup() -> (ClusterConfig, kooza_trace::TraceSet) {
        let mut config = ClusterConfig::small();
        config.workload = WorkloadMix {
            n_chunks: 120,
            ..WorkloadMix::mixed()
        };
        let trace = Cluster::new(&config).unwrap().run(1500, 91).trace;
        (config, trace)
    }

    #[test]
    fn table_one_shape_reproduced() {
        let (config, trace) = setup();
        let obs = assemble_observations(&trace).unwrap();
        let kooza = Kooza::fit(&trace).unwrap();
        let inb = InBreadthModel::fit(&trace).unwrap();
        let ind = InDepthModel::fit(&trace).unwrap();
        let table = cross_examine(
            &[&kooza, &inb, &ind],
            &obs,
            ReplayConfig::from(&config),
            1500,
            92,
        );
        let get = |name: &str| table.rows.iter().find(|r| r.model == name).unwrap();
        let k = get("kooza");
        let b = get("in-breadth");
        let d = get("in-depth");

        // The paper's Table 1, measured: KOOZA checks both columns.
        assert!(k.features_check(), "kooza features: {}", table.render());
        assert!(k.time_deps_check(), "kooza time deps: {}", table.render());
        assert!(k.completeness_check());

        // In-depth: time dependencies but no features.
        assert!(!d.features_check(), "in-depth features: {}", table.render());
        assert!(d.time_deps_check(), "in-depth time deps: {}", table.render());

        // In-breadth: marginal features lose cross-subsystem structure; on
        // this workload its disk over-stress shows up in both columns.
        assert!(!b.time_deps_check(), "in-breadth time deps: {}", table.render());

        // KOOZA's latency distribution is strictly closer than in-breadth's.
        assert!(k.latency_ks < b.latency_ks, "{}", table.render());
    }

    #[test]
    fn parameter_counts_ordering() {
        let (_, trace) = setup();
        let kooza = Kooza::fit(&trace).unwrap();
        let ind = InDepthModel::fit(&trace).unwrap();
        // The in-depth model (queueing only) is far smaller than KOOZA —
        // the simplicity the paper credits it with.
        assert!(ind.parameter_count() * 10 < kooza.parameter_count());
    }

    #[test]
    fn render_mentions_all_models() {
        let (config, trace) = setup();
        let obs = assemble_observations(&trace).unwrap();
        let kooza = Kooza::fit(&trace).unwrap();
        let table = cross_examine(&[&kooza], &obs, ReplayConfig::from(&config), 200, 93);
        assert!(table.render().contains("kooza"));
    }
}
