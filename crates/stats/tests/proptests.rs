//! Property-based tests for the statistics substrate, on the deterministic
//! in-repo `kooza-check` harness.
#![allow(clippy::needless_range_loop)]

use kooza_check::gen::{f64_range, u64_range, vec_of, zip2, zip3, zip4};
use kooza_check::{checker, ensure, ensure_eq};

use kooza_sim::rng::Rng64;
use kooza_stats::dist::{
    DiscreteDistribution, Distribution, Exponential, Gamma, Geometric, LogNormal, Normal, Pareto,
    Poisson, Uniform, Weibull, Zipf,
};
use kooza_stats::ad::{ad_one_sample, ad_one_sample_presorted};
use kooza_stats::fit::{
    fit_exponential, fit_lognormal, fit_normal, fit_pareto, fit_weibull, FitPipeline,
};
use kooza_stats::histogram::{Histogram, VuList};
use kooza_stats::ks::{
    ks_one_sample, ks_one_sample_presorted, ks_two_sample, ks_two_sample_presorted,
};
use kooza_stats::sorted::SortedSample;
use kooza_stats::matrix::Matrix;
use kooza_stats::special::{gamma_p, gamma_q, ln_gamma, normal_cdf, normal_quantile};

/// pdf is non-negative, cdf in [0,1], mean finite where defined.
#[test]
fn density_and_cdf_sanity() {
    checker("density_and_cdf_sanity").run(
        zip3(f64_range(-100.0, 100.0), f64_range(0.01, 100.0), f64_range(0.2, 5.0)),
        |&(x, rate, shape)| {
            let dists: Vec<Box<dyn Distribution>> = vec![
                Box::new(Exponential::new(rate).unwrap()),
                Box::new(Normal::new(0.0, shape).unwrap()),
                Box::new(LogNormal::new(0.0, shape).unwrap()),
                Box::new(Weibull::new(shape, 1.0).unwrap()),
                Box::new(Gamma::new(shape, 1.0).unwrap()),
                Box::new(Uniform::new(-1.0, 1.0).unwrap()),
            ];
            for d in &dists {
                ensure!(d.pdf(x) >= 0.0, "{} pdf({x}) < 0", d.name());
                let c = d.cdf(x);
                ensure!((0.0..=1.0).contains(&c), "{} cdf({x}) = {c}", d.name());
            }
            Ok(())
        },
    );
}

/// MLE fitting recovers parameters of the generating family within a
/// sampling-noise tolerance.
#[test]
fn mle_recovers_parameters() {
    checker("mle_recovers_parameters").cases(32).run(
        zip3(u64_range(0, 500), f64_range(0.2, 20.0), f64_range(0.2, 1.5)),
        |&(seed, rate, sigma)| {
            let n = 4000;
            let mut rng = Rng64::new(seed);

            let d = Exponential::new(rate).unwrap();
            let data: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
            let fit = fit_exponential(&data).unwrap();
            ensure!((fit.rate() - rate).abs() / rate < 0.15, "rate {} vs {rate}", fit.rate());

            let d = LogNormal::new(1.0, sigma).unwrap();
            let data: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
            let fit = fit_lognormal(&data).unwrap();
            ensure!((fit.sigma() - sigma).abs() < 0.12, "sigma {} vs {sigma}", fit.sigma());

            let d = Normal::new(-2.0, sigma).unwrap();
            let data: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
            let fit = fit_normal(&data).unwrap();
            ensure!((fit.mu() + 2.0).abs() < 0.15, "mu {} vs -2", fit.mu());

            let alpha = 1.0 + sigma; // 1.2..2.5
            let d = Pareto::new(1.0, alpha).unwrap();
            let data: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
            let fit = fit_pareto(&data).unwrap();
            ensure!((fit.alpha() - alpha).abs() / alpha < 0.15, "alpha {}", fit.alpha());
            Ok(())
        },
    );
}

/// The `*_presorted` KS/AD variants over a shared [`SortedSample`] return
/// bit-identical results to the sort-per-call originals, for arbitrary
/// sample sizes and shapes.
#[test]
fn presorted_tests_bit_identical() {
    checker("presorted_tests_bit_identical").run(
        zip3(u64_range(0, 500), f64_range(0.2, 5.0), u64_range(2, 400)),
        |&(seed, shape, n)| {
            let d = Weibull::new(shape, 1.0).unwrap();
            let mut rng = Rng64::new(seed);
            let a: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
            let b: Vec<f64> = (0..n + 3).map(|_| d.sample(&mut rng)).collect();
            let sa = SortedSample::new(&a).unwrap();
            let sb = SortedSample::new(&b).unwrap();
            let reference = Exponential::new(1.0).unwrap();
            ensure_eq!(
                ks_one_sample(&a, &reference).unwrap(),
                ks_one_sample_presorted(&sa, &reference)
            );
            ensure_eq!(
                ks_two_sample(&a, &b).unwrap(),
                ks_two_sample_presorted(&sa, &sb)
            );
            ensure_eq!(
                ad_one_sample(&a, &reference).unwrap(),
                ad_one_sample_presorted(&sa, &reference).unwrap()
            );
            Ok(())
        },
    );
}

/// The pipeline's shared-moments + shared-sort candidate loop produces the
/// same fits and KS statistics as running each standalone fitter and a
/// fresh KS test per family.
#[test]
fn pipeline_shared_moments_match_standalone_fits() {
    checker("pipeline_shared_moments_match_standalone_fits").cases(48).run(
        zip2(u64_range(0, 300), f64_range(0.3, 1.2)),
        |&(seed, sigma)| {
            let d = LogNormal::new(0.0, sigma).unwrap();
            let mut rng = Rng64::new(seed);
            let data: Vec<f64> = (0..600).map(|_| d.sample(&mut rng)).collect();
            let report = FitPipeline::timing().run(&data).unwrap();
            for entry in report.entries() {
                let standalone: Box<dyn Distribution> = match entry.family {
                    "exponential" => Box::new(fit_exponential(&data).unwrap()),
                    "lognormal" => Box::new(fit_lognormal(&data).unwrap()),
                    "pareto" => Box::new(fit_pareto(&data).unwrap()),
                    "weibull" => Box::new(fit_weibull(&data).unwrap()),
                    _ => continue,
                };
                ensure_eq!(entry.ks, ks_one_sample(&data, standalone.as_ref()).unwrap());
            }
            Ok(())
        },
    );
}

/// Special-function identities hold across the domain.
#[test]
fn special_function_identities() {
    checker("special_function_identities").run(
        zip3(f64_range(0.1, 30.0), f64_range(0.0, 60.0), f64_range(0.001, 0.999)),
        |&(a, x, p)| {
            ensure!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-10, "P + Q != 1");
            // ln Γ satisfies the recurrence.
            ensure!(
                (ln_gamma(a + 1.0) - a.ln() - ln_gamma(a)).abs() < 1e-8,
                "ln Γ recurrence fails at {a}"
            );
            // Φ and Φ⁻¹ invert.
            ensure!(
                (normal_cdf(normal_quantile(p)) - p).abs() < 1e-8,
                "Φ(Φ⁻¹({p})) off"
            );
            Ok(())
        },
    );
}

/// Discrete distributions: pmf sums to ~1 and samples stay in range.
#[test]
fn discrete_distributions_normalized() {
    checker("discrete_distributions_normalized").run(
        zip4(
            f64_range(0.5, 20.0), // lambda
            u64_range(2, 200),    // n
            f64_range(0.3, 2.0),  // s
            f64_range(0.05, 0.95), // gp
        ),
        |&(lambda, n, s, gp)| {
            let poisson = Poisson::new(lambda).unwrap();
            let total: f64 = (0..300).map(|k| poisson.pmf(k)).sum();
            ensure!((total - 1.0).abs() < 1e-6, "poisson pmf sums to {total}");

            let zipf = Zipf::new(n, s).unwrap();
            let total: f64 = (1..=n).map(|k| zipf.pmf(k)).sum();
            ensure!((total - 1.0).abs() < 1e-9, "zipf pmf sums to {total}");
            let mut rng = Rng64::new(n ^ 77);
            for _ in 0..20 {
                let k = zipf.sample(&mut rng);
                ensure!((1..=n).contains(&k), "zipf sample {k} outside [1, {n}]");
            }

            let geom = Geometric::new(gp).unwrap();
            ensure!(
                (geom.cdf(200) - 1.0).abs() < 1e-4 || gp < 0.06,
                "geometric cdf(200) far from 1 at p = {gp}"
            );
            Ok(())
        },
    );
}

/// Histograms conserve counts.
#[test]
fn histogram_conserves_counts() {
    checker("histogram_conserves_counts").run(
        vec_of(f64_range(-50.0, 50.0), 1, 300),
        |data: &Vec<f64>| {
            let mut h = Histogram::new(-10.0, 10.0, 8).unwrap();
            for &x in data {
                h.record(x);
            }
            let binned: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
            ensure_eq!(binned + h.underflow() + h.overflow(), data.len() as u64);
            ensure_eq!(h.total(), data.len() as u64);
            Ok(())
        },
    );
}

/// VU-lists: everything recorded is countable and samples stay in range.
#[test]
fn vu_list_sampling_in_range() {
    checker("vu_list_sampling_in_range").run(
        zip2(
            vec_of(zip2(f64_range(0.0, 4.0), f64_range(0.0, 2.0)), 1, 100),
            u64_range(0, 1000),
        ),
        |(points, seed): &(Vec<(f64, f64)>, u64)| {
            let mut vu = VuList::new(&[(0.0, 4.0, 8), (0.0, 2.0, 4)]).unwrap();
            for (a, b) in points {
                vu.record(&[*a, *b]).unwrap();
            }
            ensure_eq!(vu.total(), points.len() as u64);
            let mut rng = Rng64::new(*seed);
            let v = vu.sample(&mut rng).unwrap();
            ensure!((0.0..4.0).contains(&v[0]), "dim 0 sample {} out of range", v[0]);
            ensure!((0.0..2.0).contains(&v[1]), "dim 1 sample {} out of range", v[1]);
            Ok(())
        },
    );
}

/// Matrix solve really solves.
#[test]
fn solve_verifies() {
    checker("solve_verifies").run(
        zip2(vec_of(f64_range(1.0, 10.0), 2, 5), u64_range(0, 100)),
        |(diag, rhs_seed): &(Vec<f64>, u64)| {
            let n = diag.len();
            // Diagonally-dominant random-ish matrix: guaranteed solvable.
            let mut rng = Rng64::new(*rhs_seed);
            let mut m = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let v = if i == j { diag[i] + n as f64 } else { rng.next_f64() };
                    m.set(i, j, v);
                }
            }
            let b: Vec<f64> = (0..n).map(|_| rng.next_f64() * 10.0 - 5.0).collect();
            let x = m.solve(&b).unwrap();
            let back = m.mul_vec(&x).unwrap();
            for (bi, yi) in b.iter().zip(&back) {
                ensure!((bi - yi).abs() < 1e-8, "residual {}", (bi - yi).abs());
            }
            Ok(())
        },
    );
}

/// SVD reconstructs arbitrary small matrices.
#[test]
fn svd_reconstructs() {
    checker("svd_reconstructs").run(
        vec_of(f64_range(-5.0, 5.0), 6, 6),
        |vals: &Vec<f64>| {
            let a = Matrix::from_vec(3, 2, vals.clone()).unwrap();
            let (u, s, v) = a.svd().unwrap();
            for r in 0..3 {
                for c in 0..2 {
                    let rebuilt: f64 =
                        (0..s.len()).map(|k| u.get(r, k) * s[k] * v.get(c, k)).sum();
                    ensure!(
                        (rebuilt - a.get(r, c)).abs() < 1e-7,
                        "({r},{c}) rebuilt {rebuilt} vs {}",
                        a.get(r, c)
                    );
                }
            }
            Ok(())
        },
    );
}
