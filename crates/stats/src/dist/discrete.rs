//! Discrete distributions: Poisson (request counts), Zipf (object
//! popularity — the skew behind hot/cold data in Search-style workloads)
//! and geometric (retry/burst lengths).

use kooza_sim::rng::Rng64;

use super::{require_positive, DiscreteDistribution};
use crate::special::ln_gamma;
use crate::{Result, StatsError};

/// Poisson distribution with mean `λ`.
///
/// ```
/// use kooza_stats::dist::{DiscreteDistribution, Poisson};
/// let d = Poisson::new(4.0)?;
/// assert!((d.mean() - 4.0).abs() < 1e-12);
/// assert!(d.pmf(4) > d.pmf(10));
/// # Ok::<(), kooza_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `lambda` is finite
    /// and positive.
    pub fn new(lambda: f64) -> Result<Self> {
        require_positive("lambda", lambda)?;
        Ok(Poisson { lambda })
    }

    /// The rate/mean parameter λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl DiscreteDistribution for Poisson {
    fn pmf(&self, k: u64) -> f64 {
        (k as f64 * self.lambda.ln() - self.lambda - ln_gamma(k as f64 + 1.0)).exp()
    }

    fn cdf(&self, k: u64) -> f64 {
        (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    fn mean(&self) -> f64 {
        self.lambda
    }

    fn name(&self) -> &'static str {
        "poisson"
    }

    fn sample(&self, rng: &mut Rng64) -> u64 {
        if self.lambda < 30.0 {
            // Knuth's product method.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.next_f64_open();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction, adequate for
            // the large-λ counts used in workload generation.
            let z = crate::special::normal_quantile(rng.next_f64_open().min(1.0 - 1e-12));
            let x = self.lambda + self.lambda.sqrt() * z;
            x.round().max(0.0) as u64
        }
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s > 0`.
///
/// Rank `k` has probability proportional to `k^-s`. Used for object and
/// chunk popularity in the GFS workload generators.
///
/// ```
/// use kooza_stats::dist::{DiscreteDistribution, Zipf};
/// let d = Zipf::new(100, 1.0)?;
/// assert!(d.pmf(1) > d.pmf(2));
/// # Ok::<(), kooza_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
    /// Cumulative weights for inversion sampling.
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `n == 0` or `s` is not
    /// finite and positive.
    pub fn new(n: u64, s: f64) -> Result<Self> {
        if n == 0 {
            return Err(StatsError::InvalidParameter { name: "n", value: 0.0 });
        }
        require_positive("s", s)?;
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Ok(Zipf { n, s, cumulative })
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn s(&self) -> f64 {
        self.s
    }
}

impl DiscreteDistribution for Zipf {
    fn pmf(&self, k: u64) -> f64 {
        if k == 0 || k > self.n {
            return 0.0;
        }
        let prev = if k == 1 { 0.0 } else { self.cumulative[k as usize - 2] };
        self.cumulative[k as usize - 1] - prev
    }

    fn cdf(&self, k: u64) -> f64 {
        if k == 0 {
            0.0
        } else if k >= self.n {
            1.0
        } else {
            self.cumulative[k as usize - 1]
        }
    }

    fn mean(&self) -> f64 {
        (1..=self.n).map(|k| k as f64 * self.pmf(k)).sum()
    }

    fn name(&self) -> &'static str {
        "zipf"
    }

    /// Binary-search inversion over the precomputed cdf. Returns a rank in
    /// `1..=n`.
    fn sample(&self, rng: &mut Rng64) -> u64 {
        let u = rng.next_f64();
        let idx = self.cumulative.partition_point(|&c| c <= u);
        (idx as u64 + 1).min(self.n)
    }
}

/// Geometric distribution on `{0, 1, 2, ...}` with success probability `p`.
///
/// Models the number of failures before a success — burst lengths, retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution with success probability `p ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `p` is outside `(0, 1]`.
    pub fn new(p: f64) -> Result<Self> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(StatsError::InvalidParameter { name: "p", value: p });
        }
        Ok(Geometric { p })
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl DiscreteDistribution for Geometric {
    fn pmf(&self, k: u64) -> f64 {
        (1.0 - self.p).powf(k as f64) * self.p
    }

    fn cdf(&self, k: u64) -> f64 {
        1.0 - (1.0 - self.p).powf(k as f64 + 1.0)
    }

    fn mean(&self) -> f64 {
        (1.0 - self.p) / self.p
    }

    fn name(&self) -> &'static str {
        "geometric"
    }

    fn sample(&self, rng: &mut Rng64) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        let u = rng.next_f64_open();
        (u.ln() / (1.0 - self.p).ln()).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_pmf_sums_to_one() {
        let d = Poisson::new(3.0).unwrap();
        let total: f64 = (0..100).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn poisson_known_pmf() {
        let d = Poisson::new(2.0).unwrap();
        // P(X = 0) = e^-2
        assert!((d.pmf(0) - (-2f64).exp()).abs() < 1e-12);
        // P(X = 2) = 2 e^-2
        assert!((d.pmf(2) - 2.0 * (-2f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn poisson_sample_mean_small_lambda() {
        let d = Poisson::new(5.0).unwrap();
        let mut rng = Rng64::new(66);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_sample_mean_large_lambda() {
        let d = Poisson::new(200.0).unwrap();
        let mut rng = Rng64::new(67);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 200.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn zipf_pmf_monotone_and_normalized() {
        let d = Zipf::new(50, 1.2).unwrap();
        let total: f64 = (1..=50).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
        for k in 1..50 {
            assert!(d.pmf(k) > d.pmf(k + 1));
        }
        assert_eq!(d.pmf(0), 0.0);
        assert_eq!(d.pmf(51), 0.0);
    }

    #[test]
    fn zipf_samples_in_range_and_skewed() {
        let d = Zipf::new(10, 1.0).unwrap();
        let mut rng = Rng64::new(68);
        let mut counts = [0u32; 11];
        for _ in 0..20_000 {
            let k = d.sample(&mut rng);
            assert!((1..=10).contains(&k));
            counts[k as usize] += 1;
        }
        assert!(counts[1] > counts[5]);
        assert!(counts[1] > 2 * counts[10]);
    }

    #[test]
    fn zipf_cdf_endpoints() {
        let d = Zipf::new(5, 0.8).unwrap();
        assert_eq!(d.cdf(0), 0.0);
        assert!((d.cdf(5) - 1.0).abs() < 1e-12);
        assert!((d.cdf(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_and_samples() {
        let d = Geometric::new(0.25).unwrap();
        assert!((d.mean() - 3.0).abs() < 1e-12);
        let mut rng = Rng64::new(69);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.06, "mean {mean}");
    }

    #[test]
    fn geometric_p_one_always_zero() {
        let d = Geometric::new(1.0).unwrap();
        let mut rng = Rng64::new(70);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 0);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
    }
}
