//! A layered queueing network (LQN) with nested resource possession.
//!
//! Franks et al. and Imieowski "propose the use of LQNs in order to
//! demonstrate the nested possession of multiple resources": an upper-layer
//! server (e.g. a web-server thread) is *held* for the entire request,
//! including while it blocks on a lower-layer call (e.g. the database). The
//! paper's criticism — that the concurrent-queue complexity "often makes it
//! prohibitive for large scale experiments" — is exactly what the
//! cross-examination harness quantifies against simpler models.
//!
//! This module simulates a two-layer LQN exactly; deeper stacks compose by
//! treating the lower layer's response time as the next layer's service.

use std::collections::HashMap;

use kooza_sim::rng::Rng64;
use kooza_sim::{Engine, ServerPool, SimDuration, SimTime, Tally};
use kooza_stats::dist::Distribution;

use crate::arrival::ArrivalProcess;
use crate::{QueueError, Result};

/// Configuration of a two-layer LQN.
#[derive(Debug)]
pub struct LqnConfig {
    /// Upper-layer servers (threads); each is held for the whole request.
    pub upper_servers: usize,
    /// Lower-layer servers (e.g. database connections).
    pub lower_servers: usize,
    /// CPU work before the nested call, seconds.
    pub pre_service: Box<dyn Distribution>,
    /// Lower-layer service time, seconds.
    pub lower_service: Box<dyn Distribution>,
    /// CPU work after the nested call returns, seconds.
    pub post_service: Box<dyn Distribution>,
    /// Number of nested lower-layer calls per request.
    pub calls_per_request: u32,
}

/// Simulation output of the LQN.
#[derive(Debug, Clone)]
pub struct LqnResults {
    /// End-to-end response times, seconds.
    pub response_secs: Tally,
    /// Time-averaged upper-layer (thread pool) utilization.
    pub upper_utilization: f64,
    /// Time-averaged lower-layer utilization.
    pub lower_utilization: f64,
    /// Completed requests.
    pub completed: u64,
    /// Simulated makespan, seconds.
    pub makespan_secs: f64,
}

impl LqnResults {
    /// Throughput in requests/second.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.makespan_secs > 0.0 {
            self.completed as f64 / self.makespan_secs
        } else {
            0.0
        }
    }
}

#[derive(Debug)]
enum Ev {
    External { id: u64 },
    /// Pre-call CPU phase done; issue the nested call.
    PreDone { id: u64 },
    /// Lower-layer service done for this request.
    LowerDone { id: u64 },
    /// Post-call CPU phase done; request completes, thread released.
    PostDone { id: u64 },
}

/// Simulates `n_requests` through the two-layer LQN.
///
/// # Errors
///
/// Returns [`QueueError::InvalidParameter`] for zero server counts or
/// zero calls per request.
pub fn simulate_lqn(
    config: &LqnConfig,
    arrivals: &mut dyn ArrivalProcess,
    n_requests: u64,
    rng: &mut Rng64,
) -> Result<LqnResults> {
    if config.upper_servers == 0 {
        return Err(QueueError::InvalidParameter { name: "upper_servers", value: 0.0 });
    }
    if config.lower_servers == 0 {
        return Err(QueueError::InvalidParameter { name: "lower_servers", value: 0.0 });
    }
    if config.calls_per_request == 0 {
        return Err(QueueError::InvalidParameter { name: "calls_per_request", value: 0.0 });
    }

    let mut engine: Engine<Ev> = Engine::new();
    let mut upper: ServerPool<u64> = ServerPool::new(config.upper_servers);
    let mut lower: ServerPool<u64> = ServerPool::new(config.lower_servers);
    let mut entry: HashMap<u64, SimTime> = HashMap::new();
    let mut remaining_calls: HashMap<u64, u32> = HashMap::new();
    let mut response = Tally::new();
    let mut completed = 0u64;
    let mut next_id = 0u64;

    let dur = |d: &dyn Distribution, rng: &mut Rng64| {
        SimDuration::from_secs_f64(d.sample(rng).max(0.0))
    };

    if n_requests > 0 {
        let first = arrivals.next_gap(rng);
        engine.schedule(SimDuration::from_secs_f64(first.max(0.0)), Ev::External { id: 0 });
        next_id = 1;
    }

    while let Some((now, ev)) = engine.next() {
        match ev {
            Ev::External { id } => {
                if next_id < n_requests {
                    let gap = arrivals.next_gap(rng);
                    engine.schedule(
                        SimDuration::from_secs_f64(gap.max(0.0)),
                        Ev::External { id: next_id },
                    );
                    next_id += 1;
                }
                entry.insert(id, now);
                remaining_calls.insert(id, config.calls_per_request);
                // Acquire a thread; held until PostDone.
                if let Some(job) = upper.arrive(now, id) {
                    engine.schedule(dur(config.pre_service.as_ref(), rng), Ev::PreDone { id: job });
                }
            }
            Ev::PreDone { id } => {
                // Thread blocks; the request queues at the lower layer.
                if let Some(job) = lower.arrive(now, id) {
                    engine.schedule(
                        dur(config.lower_service.as_ref(), rng),
                        Ev::LowerDone { id: job },
                    );
                }
            }
            Ev::LowerDone { id } => {
                // Release the lower server (start the next queued call).
                if let Some(job) = lower.complete(now) {
                    engine.schedule(
                        dur(config.lower_service.as_ref(), rng),
                        Ev::LowerDone { id: job },
                    );
                }
                let calls = remaining_calls.get_mut(&id).expect("tracked request");
                *calls -= 1;
                if *calls > 0 {
                    // Another nested call (still holding the thread).
                    if let Some(job) = lower.arrive(now, id) {
                        engine.schedule(
                            dur(config.lower_service.as_ref(), rng),
                            Ev::LowerDone { id: job },
                        );
                    }
                } else {
                    engine.schedule(dur(config.post_service.as_ref(), rng), Ev::PostDone { id });
                }
            }
            Ev::PostDone { id } => {
                remaining_calls.remove(&id);
                if let Some(t0) = entry.remove(&id) {
                    response.record((now - t0).as_secs_f64());
                }
                completed += 1;
                // Release the thread; admit the next queued request.
                if let Some(job) = upper.complete(now) {
                    engine.schedule(dur(config.pre_service.as_ref(), rng), Ev::PreDone { id: job });
                }
            }
        }
    }

    let end = engine.now();
    Ok(LqnResults {
        response_secs: response,
        upper_utilization: upper.utilization(end),
        lower_utilization: lower.utilization(end),
        completed,
        makespan_secs: end.as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::PoissonArrivals;
    use kooza_stats::dist::Exponential;

    fn config(upper: usize, lower: usize, calls: u32) -> LqnConfig {
        LqnConfig {
            upper_servers: upper,
            lower_servers: lower,
            pre_service: Box::new(Exponential::with_mean(0.001).unwrap()),
            lower_service: Box::new(Exponential::with_mean(0.004).unwrap()),
            post_service: Box::new(Exponential::with_mean(0.001).unwrap()),
            calls_per_request: calls,
        }
    }

    #[test]
    fn completes_all_requests() {
        let cfg = config(16, 4, 1);
        let mut arrivals = PoissonArrivals::new(100.0).unwrap();
        let mut rng = Rng64::new(1500);
        let res = simulate_lqn(&cfg, &mut arrivals, 20_000, &mut rng).unwrap();
        assert_eq!(res.completed, 20_000);
        // At least the raw work (0.006 mean) minus sampling slack.
        assert!(res.response_secs.mean() > 0.0055, "mean {}", res.response_secs.mean());
    }

    #[test]
    fn thread_starvation_from_nested_blocking() {
        // The LQN signature: with few threads, upper-layer saturation
        // driven by *lower-layer* slowness, even though threads do little
        // CPU work themselves. Here the lower layer is slow (2 servers at
        // 20 ms, ρ = 0.9 for 90 req/s) so each thread is held ~0.1 s.
        let slow_lower = || LqnConfig {
            upper_servers: 0, // set per call below
            lower_servers: 2,
            pre_service: Box::new(Exponential::with_mean(0.001).unwrap()),
            lower_service: Box::new(Exponential::with_mean(0.02).unwrap()),
            post_service: Box::new(Exponential::with_mean(0.001).unwrap()),
            calls_per_request: 1,
        };
        let mut rng = Rng64::new(1501);
        let many = simulate_lqn(
            &LqnConfig { upper_servers: 64, ..slow_lower() },
            &mut PoissonArrivals::new(90.0).unwrap(),
            20_000,
            &mut rng,
        )
        .unwrap();
        // 2 threads, each held ~24 ms per request (2 ms CPU + ~22 ms in the
        // lower layer at low concurrency) → pool capacity ≈ 83 req/s,
        // below the 90 req/s offered: the thread pool saturates even
        // though its own CPU demand is only 0.002 × 90 = 18% of one server.
        let few = simulate_lqn(
            &LqnConfig { upper_servers: 2, ..slow_lower() },
            &mut PoissonArrivals::new(90.0).unwrap(),
            20_000,
            &mut rng,
        )
        .unwrap();
        // Few threads → thread pool close to saturation and latency
        // inflated. (The 3-thread pool self-throttles the lower layer, so
        // utilization settles below the open-system estimate.)
        assert!(few.upper_utilization > 0.95, "upper util {}", few.upper_utilization);
        assert!(few.upper_utilization > 2.0 * many.upper_utilization);
        assert!(
            few.response_secs.mean() > 1.5 * many.response_secs.mean(),
            "few {} vs many {}",
            few.response_secs.mean(),
            many.response_secs.mean()
        );
    }

    #[test]
    fn more_nested_calls_longer_response() {
        let mut rng = Rng64::new(1502);
        let one = simulate_lqn(
            &config(32, 8, 1),
            &mut PoissonArrivals::new(50.0).unwrap(),
            20_000,
            &mut rng,
        )
        .unwrap();
        let three = simulate_lqn(
            &config(32, 8, 3),
            &mut PoissonArrivals::new(50.0).unwrap(),
            20_000,
            &mut rng,
        )
        .unwrap();
        assert!(three.response_secs.mean() > 2.0 * one.response_secs.mean());
    }

    #[test]
    fn throughput_tracks_offered_load_when_stable() {
        let cfg = config(32, 16, 1);
        let mut arrivals = PoissonArrivals::new(80.0).unwrap();
        let mut rng = Rng64::new(1503);
        let res = simulate_lqn(&cfg, &mut arrivals, 40_000, &mut rng).unwrap();
        assert!((res.throughput_per_sec() - 80.0).abs() < 3.0, "tput {}", res.throughput_per_sec());
    }

    #[test]
    fn validation_errors() {
        let mut arrivals = PoissonArrivals::new(1.0).unwrap();
        let mut rng = Rng64::new(1);
        assert!(simulate_lqn(&config(0, 1, 1), &mut arrivals, 1, &mut rng).is_err());
        assert!(simulate_lqn(&config(1, 0, 1), &mut arrivals, 1, &mut rng).is_err());
        assert!(simulate_lqn(&config(1, 1, 0), &mut arrivals, 1, &mut rng).is_err());
    }

    #[test]
    fn zero_requests_noop() {
        let cfg = config(2, 2, 1);
        let mut arrivals = PoissonArrivals::new(1.0).unwrap();
        let mut rng = Rng64::new(2);
        let res = simulate_lqn(&cfg, &mut arrivals, 0, &mut rng).unwrap();
        assert_eq!(res.completed, 0);
    }
}
