//! Borrowed, zero-copy views over trace data.
//!
//! Model training fans out over per-server (or per-stream) subsets of one
//! owned trace. Before this module, every consumer that wanted "server 3's
//! records" received its own `TraceSet` — a full deep copy of every
//! record. [`TraceView`] is the borrowed alternative: per-stream slices
//! over one owned [`TraceSet`], cheap to hand to a worker thread.
//!
//! [`ShardedTrace`] is the owning counterpart for partitioned data: one
//! `TraceSet` whose streams are grouped by shard (server), plus the range
//! table that turns shard `i` into a `TraceView` in O(1) without copying
//! a single record.

use std::ops::Range;

use crate::record::{CpuRecord, MemoryRecord, NetworkRecord, StorageRecord};
use crate::span::{Span, SpanCollector, TraceTree};
use crate::store::TraceSet;

/// A borrowed view over (a subset of) a trace: per-stream slices.
///
/// Mirrors the read surface of [`TraceSet`] — same field names, same
/// derived queries — so training code is written once against the view.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceView<'a> {
    /// Storage I/O records.
    pub storage: &'a [StorageRecord],
    /// CPU samples.
    pub cpu: &'a [CpuRecord],
    /// Memory accesses.
    pub memory: &'a [MemoryRecord],
    /// Network events.
    pub network: &'a [NetworkRecord],
    /// Raw spans (grouped into trees on demand).
    pub spans: &'a [Span],
}

impl<'a> From<&'a TraceSet> for TraceView<'a> {
    fn from(set: &'a TraceSet) -> Self {
        set.as_view()
    }
}

impl<'a> TraceView<'a> {
    /// Total records across all streams.
    pub fn len(&self) -> usize {
        self.storage.len() + self.cpu.len() + self.memory.len() + self.network.len()
            + self.spans.len()
    }

    /// Whether every stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Groups the viewed spans into per-request trees, skipping malformed
    /// groups (same semantics as [`TraceSet::span_trees`]).
    pub fn span_trees(&self) -> Vec<TraceTree> {
        let mut collector = SpanCollector::new();
        for span in self.spans {
            collector.record(span.clone());
        }
        collector.into_trees()
    }

    /// Distinct request ids seen in the network stream, in first-seen
    /// order (same semantics as [`TraceSet::request_ids`]).
    pub fn request_ids(&self) -> Vec<u64> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for r in self.network {
            if seen.insert(r.request_id) {
                out.push(r.request_id);
            }
        }
        out
    }

    /// Deep-copies the viewed records into an owned [`TraceSet`]. The
    /// escape hatch for APIs that need ownership; hot paths should stay
    /// on the view.
    pub fn to_owned_set(&self) -> TraceSet {
        TraceSet {
            storage: self.storage.to_vec(),
            cpu: self.cpu.to_vec(),
            memory: self.memory.to_vec(),
            network: self.network.to_vec(),
            spans: self.spans.to_vec(),
        }
    }
}

impl TraceSet {
    /// A borrowed view over this whole trace set.
    pub fn as_view(&self) -> TraceView<'_> {
        TraceView {
            storage: &self.storage,
            cpu: &self.cpu,
            memory: &self.memory,
            network: &self.network,
            spans: &self.spans,
        }
    }
}

/// Per-shard slice boundaries into a grouped [`TraceSet`].
#[derive(Debug, Clone)]
struct ShardRanges {
    storage: Range<usize>,
    cpu: Range<usize>,
    memory: Range<usize>,
    network: Range<usize>,
    spans: Range<usize>,
}

/// One owned trace, grouped by shard, viewable per shard without copying.
///
/// Built with [`ShardedTrace::partition`] from a record → shard
/// assignment (in the GFS simulator: request id → serving chunkserver).
/// Within each shard, records keep the relative order they had in the
/// source trace — partitioning a time-sorted trace yields time-sorted
/// shards.
#[derive(Debug, Clone, Default)]
pub struct ShardedTrace {
    set: TraceSet,
    ranges: Vec<ShardRanges>,
}

impl ShardedTrace {
    /// Partitions `source` into `n_shards` groups. `shard_of` maps a
    /// request id to its shard and must return values `< n_shards`.
    ///
    /// This performs the *only* copy in the per-shard pipeline: one stable
    /// counting-sort of each stream into the grouped set. Every subsequent
    /// [`shard`](ShardedTrace::shard) call is a pair of slice borrows.
    ///
    /// # Panics
    ///
    /// Panics if `shard_of` returns an out-of-range shard.
    pub fn partition(
        source: &TraceSet,
        n_shards: usize,
        shard_of: impl Fn(u64) -> usize,
    ) -> ShardedTrace {
        fn group<T: Clone>(
            items: &[T],
            n_shards: usize,
            shard_of_item: impl Fn(&T) -> usize,
            range_of: impl Fn(&mut ShardRanges) -> &mut Range<usize>,
            ranges: &mut [ShardRanges],
        ) -> Vec<T> {
            let mut counts = vec![0usize; n_shards];
            for item in items {
                let shard = shard_of_item(item);
                assert!(shard < n_shards, "shard {shard} out of range (< {n_shards})");
                counts[shard] += 1;
            }
            let mut acc = 0usize;
            for (shard, count) in counts.iter().enumerate() {
                *range_of(&mut ranges[shard]) = acc..acc + count;
                acc += count;
            }
            let mut out: Vec<T> = Vec::with_capacity(items.len());
            // Stable placement: walk the source once per shard. For the
            // shard counts seen in practice (a handful of servers) this
            // stays cache-friendly and allocation-free.
            for target in 0..n_shards {
                for item in items {
                    if shard_of_item(item) == target {
                        out.push(item.clone());
                    }
                }
            }
            debug_assert_eq!(out.len(), items.len());
            out
        }

        let mut ranges = vec![
            ShardRanges {
                storage: 0..0,
                cpu: 0..0,
                memory: 0..0,
                network: 0..0,
                spans: 0..0,
            };
            n_shards
        ];
        let set = TraceSet {
            storage: group(&source.storage, n_shards, |r| shard_of(r.request_id), |s| &mut s.storage, &mut ranges),
            cpu: group(&source.cpu, n_shards, |r| shard_of(r.request_id), |s| &mut s.cpu, &mut ranges),
            memory: group(&source.memory, n_shards, |r| shard_of(r.request_id), |s| &mut s.memory, &mut ranges),
            network: group(&source.network, n_shards, |r| shard_of(r.request_id), |s| &mut s.network, &mut ranges),
            spans: group(&source.spans, n_shards, |s| shard_of(s.trace_id.0), |s| &mut s.spans, &mut ranges),
        };
        ShardedTrace { set, ranges }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.ranges.len()
    }

    /// The zero-copy view of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> TraceView<'_> {
        let r = &self.ranges[shard];
        TraceView {
            storage: &self.set.storage[r.storage.clone()],
            cpu: &self.set.cpu[r.cpu.clone()],
            memory: &self.set.memory[r.memory.clone()],
            network: &self.set.network[r.network.clone()],
            spans: &self.set.spans[r.spans.clone()],
        }
    }

    /// Views of every shard, in shard order.
    pub fn views(&self) -> Vec<TraceView<'_>> {
        (0..self.n_shards()).map(|i| self.shard(i)).collect()
    }

    /// The grouped backing set (shard-major order, time-sorted within
    /// each shard).
    pub fn backing_set(&self) -> &TraceSet {
        &self.set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Direction, IoOp};
    use crate::span::{SpanId, TraceId};

    fn multi_request_set() -> TraceSet {
        let mut ts = TraceSet::new();
        for id in 0..6u64 {
            ts.network.push(NetworkRecord {
                ts_nanos: id * 10,
                size: 1024 + id,
                direction: Direction::Ingress,
                request_id: id,
            });
            ts.cpu.push(CpuRecord {
                ts_nanos: id * 10 + 1,
                utilization: 0.1,
                busy_nanos: 100 + id,
                request_id: id,
            });
            if id % 2 == 0 {
                ts.storage.push(StorageRecord {
                    ts_nanos: id * 10 + 2,
                    lbn: id * 1000,
                    size: 4096,
                    op: IoOp::Read,
                    request_id: id,
                });
            }
            if id % 3 == 0 {
                ts.memory.push(MemoryRecord {
                    ts_nanos: id * 10 + 3,
                    bank: id as u32,
                    size: 64,
                    op: IoOp::Write,
                    request_id: id,
                });
            }
            ts.spans.push(Span::new(TraceId(id), SpanId(0), None, "request", id * 10, id * 10 + 9));
        }
        ts
    }

    #[test]
    fn whole_set_view_matches_set() {
        let ts = multi_request_set();
        let view = ts.as_view();
        assert_eq!(view.len(), ts.len());
        assert_eq!(view.request_ids(), ts.request_ids());
        assert_eq!(view.span_trees().len(), ts.span_trees().len());
        assert_eq!(view.to_owned_set(), ts);
        assert!(!view.is_empty());
        assert!(TraceSet::new().as_view().is_empty());
    }

    #[test]
    fn partition_covers_and_separates() {
        let ts = multi_request_set();
        let sharded = ShardedTrace::partition(&ts, 3, |id| (id % 3) as usize);
        assert_eq!(sharded.n_shards(), 3);
        let views = sharded.views();
        let total: usize = views.iter().map(|v| v.len()).sum();
        assert_eq!(total, ts.len());
        for (shard, view) in views.iter().enumerate() {
            for r in view.network {
                assert_eq!((r.request_id % 3) as usize, shard);
            }
            for s in view.spans {
                assert_eq!((s.trace_id.0 % 3) as usize, shard);
            }
        }
        // Shard 0 owns requests 0 and 3: one storage record (id 0), two
        // memory records (ids 0 and 3).
        assert_eq!(views[0].storage.len(), 1);
        assert_eq!(views[0].memory.len(), 2);
    }

    #[test]
    fn partition_preserves_relative_order() {
        let ts = multi_request_set();
        let sharded = ShardedTrace::partition(&ts, 2, |id| (id % 2) as usize);
        for view in sharded.views() {
            for w in view.network.windows(2) {
                assert!(w[0].ts_nanos <= w[1].ts_nanos);
            }
        }
        // Round-tripping a shard through to_owned_set keeps it equal to
        // a filter of the source.
        let shard0 = sharded.shard(0).to_owned_set();
        let expected: Vec<u64> =
            ts.network.iter().filter(|r| r.request_id % 2 == 0).map(|r| r.request_id).collect();
        assert_eq!(shard0.network.iter().map(|r| r.request_id).collect::<Vec<_>>(), expected);
    }

    #[test]
    fn empty_partition() {
        let sharded = ShardedTrace::partition(&TraceSet::new(), 4, |_| 0);
        assert_eq!(sharded.n_shards(), 4);
        for view in sharded.views() {
            assert!(view.is_empty());
        }
        assert!(sharded.backing_set().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_shard_panics() {
        let ts = multi_request_set();
        ShardedTrace::partition(&ts, 2, |id| id as usize);
    }
}
