//! Self-instrumentation for the KOOZA harness.
//!
//! `kooza-obs` watches the pipeline from the inside: a metrics registry
//! (counters, gauges, fixed-boundary histograms), scoped stage-span
//! timers that build a tree of pipeline phases (train → generate →
//! replay → validate), and per-worker execution profiles surfaced from
//! the `kooza-exec` pool. Everything exports as kooza-json JSONL and
//! renders as a human-readable report (`kooza obs`).
//!
//! # Determinism
//!
//! The workspace's contract is bit-identical output at any thread count,
//! and instrumentation must not be the thing that breaks it. The design
//! splits collected data into two classes:
//!
//! * **deterministic** — counters, gauges, histogram contents, the stage
//!   tree's *shape* (names, nesting, counts). Registry operations exposed
//!   to parallel tasks are commutative (adds, maxima, integer records),
//!   so interleaving cannot change the final state; histogram values are
//!   `u64`, so no float-summation order leaks in.
//! * **environmental** — wall-clock durations, core counts, chunk→worker
//!   assignments. These live only in `"wall"` sub-objects and
//!   whole-`"kind"` `meta`/`pool` lines, and
//!   [`report::strip_nondeterministic`] removes exactly that set. The
//!   committed determinism test pins that a stripped report is
//!   byte-identical across `--threads 1/2/8`.
//!
//! # Typical use
//!
//! ```
//! kooza_obs::global::enable();
//! let total = kooza_obs::global::stage("replay", || {
//!     kooza_obs::global::counter_add("replay.requests", 600);
//!     600u64
//! });
//! let report = kooza_obs::global::report().expect("enabled");
//! assert_eq!(report.metrics.counter("replay.requests"), Some(total));
//! let jsonl = report.to_jsonl();
//! let stripped = kooza_obs::report::strip_nondeterministic(&jsonl).unwrap();
//! assert!(!stripped.contains("wall"));
//! kooza_obs::global::disable();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod global;
pub mod metrics;
pub mod report;
pub mod stage;

pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use report::{strip_nondeterministic, ObsReport};
pub use stage::{StageNode, StageRecorder};
