//! Per-request observation assembly and request classification.
//!
//! Models train on *requests*, not raw record streams; this module joins
//! the four per-subsystem streams and the span tree of each request id
//! (the Dapper global-identifier discipline makes that join possible) into
//! a [`RequestObservation`], and derives the request's structural
//! *class* — its phase sequence signature. Classes are what KOOZA's
//! time-dependency queue is built from.

use std::collections::{BTreeMap, HashMap};

use kooza_trace::record::{Direction, IoOp};
use kooza_trace::view::TraceView;
use kooza_trace::{Span, TraceSet};

use crate::{ModelError, Result};

/// The structural signature of a request: its leaf-phase sequence.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassSignature(pub Vec<String>);

impl std::fmt::Display for ClassSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0.join(" → "))
    }
}

/// Everything observed about one request across all subsystems.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestObservation {
    /// Global request id.
    pub request_id: u64,
    /// Arrival time, nanoseconds.
    pub arrival_nanos: u64,
    /// Ingress payload bytes.
    pub network_in_bytes: u64,
    /// Egress payload bytes (0 if the egress record is missing).
    pub network_out_bytes: u64,
    /// Total CPU busy nanoseconds.
    pub cpu_busy_nanos: u64,
    /// CPU utilization over the request lifetime, `[0, 1]`.
    pub cpu_utilization: f64,
    /// Memory accesses: (bank, bytes, op).
    pub memory: Vec<(u32, u64, IoOp)>,
    /// Storage accesses: (lbn, bytes, op).
    pub storage: Vec<(u64, u64, IoOp)>,
    /// End-to-end latency from the span tree, nanoseconds.
    pub latency_nanos: u64,
    /// Leaf phase names in execution order.
    pub phase_sequence: Vec<String>,
    /// Leaf phase durations in nanoseconds, aligned with
    /// [`phase_sequence`](Self::phase_sequence).
    pub phase_durations_nanos: Vec<u64>,
}

impl RequestObservation {
    /// The request's structural class: the phase sequence with memory and
    /// storage phases suffixed by their access type (`disk.r`/`disk.w`),
    /// so a read pipeline and a write pipeline with the same phase names
    /// are distinct classes — they stress the subsystems differently.
    pub fn signature(&self) -> ClassSignature {
        let mem_suffix = majority_suffix(self.memory.iter().map(|m| m.2));
        let disk_suffix = majority_suffix(self.storage.iter().map(|s| s.2));
        ClassSignature(
            self.phase_sequence
                .iter()
                .map(|p| match p.as_str() {
                    "memory" => format!("memory{mem_suffix}"),
                    "disk" => format!("disk{disk_suffix}"),
                    other => other.to_string(),
                })
                .collect(),
        )
    }
}

/// `.r` / `.w` by majority op, empty when there are no accesses.
fn majority_suffix(ops: impl Iterator<Item = IoOp>) -> &'static str {
    let mut reads = 0usize;
    let mut writes = 0usize;
    for op in ops {
        match op {
            IoOp::Read => reads += 1,
            IoOp::Write => writes += 1,
        }
    }
    if reads == 0 && writes == 0 {
        ""
    } else if reads >= writes {
        ".r"
    } else {
        ".w"
    }
}

/// Joins a trace into per-request observations, ordered by arrival.
///
/// Only requests with a complete span tree are returned (exactly the set a
/// Dapper-style sampled deployment would yield).
///
/// # Errors
///
/// Returns [`ModelError::MissingStream`] if the trace has no network
/// records, or [`ModelError::InsufficientRequests`] if no request has a
/// complete span tree.
pub fn assemble_observations(trace: &TraceSet) -> Result<Vec<RequestObservation>> {
    assemble_observations_view(&trace.as_view())
}

/// [`assemble_observations`] over a borrowed [`TraceView`] — the zero-copy
/// path parallel per-server training uses (each worker gets a slice of the
/// one owned cluster trace, never a cloned `TraceSet`).
///
/// # Errors
///
/// Same as [`assemble_observations`].
pub fn assemble_observations_view(trace: &TraceView<'_>) -> Result<Vec<RequestObservation>> {
    if trace.network.is_empty() {
        return Err(ModelError::MissingStream("network"));
    }
    // Group borrowed spans by trace id. This intentionally bypasses
    // `span_trees()`: building a `TraceTree` clones every span (including
    // its name string) into per-tree maps, and on a 1k-request trace that
    // join dominated the whole training pass. Only the root, the leaf set
    // and the tree-validity checks are needed here, and all three fall out
    // of one pass over the borrowed group.
    let mut by_trace: HashMap<u64, Vec<&Span>> = HashMap::new();
    for span in trace.spans {
        by_trace.entry(span.trace_id.0).or_default().push(span);
    }
    let mut by_request: HashMap<u64, RequestObservation> = HashMap::with_capacity(by_trace.len());
    for (id, spans) in by_trace {
        if let Some(obs) = observation_from_spans(id, &spans) {
            by_request.insert(id, obs);
        }
    }
    if by_request.is_empty() {
        return Err(ModelError::InsufficientRequests { needed: 1, got: 0 });
    }
    for r in trace.network {
        if let Some(obs) = by_request.get_mut(&r.request_id) {
            match r.direction {
                Direction::Ingress => obs.network_in_bytes += r.size,
                Direction::Egress => obs.network_out_bytes += r.size,
            }
        }
    }
    for r in trace.cpu {
        if let Some(obs) = by_request.get_mut(&r.request_id) {
            obs.cpu_busy_nanos += r.busy_nanos;
            obs.cpu_utilization = r.utilization;
        }
    }
    for r in trace.memory {
        if let Some(obs) = by_request.get_mut(&r.request_id) {
            obs.memory.push((r.bank, r.size, r.op));
        }
    }
    for r in trace.storage {
        if let Some(obs) = by_request.get_mut(&r.request_id) {
            obs.storage.push((r.lbn, r.size, r.op));
        }
    }
    let mut out: Vec<RequestObservation> = by_request.into_values().collect();
    out.sort_by_key(|o| (o.arrival_nanos, o.request_id));
    Ok(out)
}

/// Builds one request's observation skeleton from its borrowed spans, or
/// `None` if they do not form a valid tree — the same groups
/// [`kooza_trace::TraceTree::build`] rejects (duplicate span ids, not
/// exactly one root, or a reference to a missing parent).
fn observation_from_spans(id: u64, spans: &[&Span]) -> Option<RequestObservation> {
    let mut span_ids: Vec<u64> = spans.iter().map(|s| s.span_id.0).collect();
    span_ids.sort_unstable();
    if span_ids.windows(2).any(|w| w[0] == w[1]) {
        return None;
    }
    let mut root: Option<&Span> = None;
    // Span ids that appear as a parent; the complement is the leaf set.
    let mut parent_ids: Vec<u64> = Vec::with_capacity(spans.len());
    for span in spans {
        match span.parent {
            None => {
                if root.is_some() {
                    return None;
                }
                root = Some(span);
            }
            Some(parent) => {
                if span_ids.binary_search(&parent.0).is_err() {
                    return None;
                }
                parent_ids.push(parent.0);
            }
        }
    }
    let root = root?;
    parent_ids.sort_unstable();
    let mut leaves: Vec<&Span> = spans
        .iter()
        .copied()
        .filter(|s| parent_ids.binary_search(&s.span_id.0).is_err())
        .collect();
    leaves.sort_by_key(|s| (s.start_nanos, s.span_id.0));
    Some(RequestObservation {
        request_id: id,
        arrival_nanos: root.start_nanos,
        network_in_bytes: 0,
        network_out_bytes: 0,
        cpu_busy_nanos: 0,
        cpu_utilization: 0.0,
        memory: Vec::new(),
        storage: Vec::new(),
        latency_nanos: root.duration_nanos(),
        phase_sequence: leaves.iter().map(|s| s.name.to_string()).collect(),
        phase_durations_nanos: leaves.iter().map(|s| s.duration_nanos()).collect(),
    })
}

/// Groups observations by class signature, most frequent class first.
pub fn group_by_class(
    observations: &[RequestObservation],
) -> Vec<(ClassSignature, Vec<&RequestObservation>)> {
    let mut groups: BTreeMap<ClassSignature, Vec<&RequestObservation>> = BTreeMap::new();
    for obs in observations {
        groups.entry(obs.signature()).or_default().push(obs);
    }
    let mut out: Vec<(ClassSignature, Vec<&RequestObservation>)> = groups.into_iter().collect();
    out.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};

    fn gfs_trace(mix: WorkloadMix, n: u64) -> TraceSet {
        let mut config = ClusterConfig::small();
        config.workload = mix;
        Cluster::new(&config).unwrap().run(n, 11).trace
    }

    #[test]
    fn assembles_every_traced_request() {
        let trace = gfs_trace(WorkloadMix::read_heavy(), 200);
        let obs = assemble_observations(&trace).unwrap();
        assert_eq!(obs.len(), 200);
        for o in &obs {
            // Reads: 1 KB request header in, 64 KB payload out.
            assert_eq!(o.network_in_bytes, 1024);
            assert_eq!(o.network_out_bytes, 64 * 1024);
            assert!(o.latency_nanos > 0);
            assert!(o.cpu_busy_nanos > 0);
            assert!(!o.phase_sequence.is_empty());
            assert_eq!(o.phase_sequence.len(), o.phase_durations_nanos.len());
            assert_eq!(o.memory.len(), 1);
        }
    }

    #[test]
    fn observations_sorted_by_arrival() {
        let trace = gfs_trace(WorkloadMix::mixed(), 150);
        let obs = assemble_observations(&trace).unwrap();
        for w in obs.windows(2) {
            assert!(w[0].arrival_nanos <= w[1].arrival_nanos);
        }
    }

    #[test]
    fn classes_separate_hits_from_misses() {
        // A hot working set produces both cache-hit (5-phase) and miss
        // (6-phase) classes.
        let mix = WorkloadMix { n_chunks: 40, ..WorkloadMix::read_heavy() };
        let trace = gfs_trace(mix, 500);
        let obs = assemble_observations(&trace).unwrap();
        let groups = group_by_class(&obs);
        assert!(groups.len() >= 2, "classes: {}", groups.len());
        let lens: Vec<usize> = groups.iter().map(|(sig, _)| sig.0.len()).collect();
        assert!(lens.contains(&5) && lens.contains(&6), "lens {lens:?}");
        // Most frequent first.
        for w in groups.windows(2) {
            assert!(w[0].1.len() >= w[1].1.len());
        }
        // Storage records only on the miss class.
        for (sig, members) in &groups {
            let has_disk = sig.0.iter().any(|p| p.starts_with("disk"));
            for m in members {
                assert_eq!(!m.storage.is_empty(), has_disk, "sig {sig}");
            }
        }
    }

    #[test]
    fn assembly_matches_span_tree_reference() {
        use kooza_trace::{SpanId, TraceId};
        // The fast grouped join must produce exactly what the
        // TraceTree-based reference produces, including skipping the same
        // malformed span groups.
        let mut trace = gfs_trace(WorkloadMix::mixed(), 300);
        let t = TraceId(1_000_001);
        // Two roots: invalid, must be skipped.
        trace.spans.push(Span::new(t, SpanId(0), None, "request", 1, 10));
        trace.spans.push(Span::new(t, SpanId(1), None, "request", 2, 9));
        // Missing parent: invalid.
        let t2 = TraceId(1_000_002);
        trace.spans.push(Span::new(t2, SpanId(0), None, "request", 1, 10));
        trace.spans.push(Span::new(t2, SpanId(1), Some(SpanId(9)), "cpu", 2, 9));
        // Duplicate span id: invalid.
        let t3 = TraceId(1_000_003);
        trace.spans.push(Span::new(t3, SpanId(0), None, "request", 1, 10));
        trace.spans.push(Span::new(t3, SpanId(0), Some(SpanId(0)), "cpu", 2, 9));
        let obs = assemble_observations(&trace).unwrap();
        let mut reference: Vec<RequestObservation> = trace
            .span_trees()
            .into_iter()
            .map(|tree| {
                let mut leaves: Vec<&Span> = tree
                    .spans()
                    .filter(|s| tree.children(s.span_id).is_empty())
                    .collect();
                leaves.sort_by_key(|s| (s.start_nanos, s.span_id));
                RequestObservation {
                    request_id: tree.trace_id().0,
                    arrival_nanos: tree.root().start_nanos,
                    network_in_bytes: 0,
                    network_out_bytes: 0,
                    cpu_busy_nanos: 0,
                    cpu_utilization: 0.0,
                    memory: Vec::new(),
                    storage: Vec::new(),
                    latency_nanos: tree.total_latency_nanos(),
                    phase_sequence: leaves.iter().map(|s| s.name.to_string()).collect(),
                    phase_durations_nanos: leaves.iter().map(|s| s.duration_nanos()).collect(),
                }
            })
            .collect();
        reference.sort_by_key(|o| (o.arrival_nanos, o.request_id));
        assert_eq!(obs.len(), reference.len());
        for (a, b) in obs.iter().zip(&reference) {
            assert_eq!(a.request_id, b.request_id);
            assert_eq!(a.arrival_nanos, b.arrival_nanos);
            assert_eq!(a.latency_nanos, b.latency_nanos);
            assert_eq!(a.phase_sequence, b.phase_sequence);
            assert_eq!(a.phase_durations_nanos, b.phase_durations_nanos);
        }
        // None of the three malformed traces survived.
        assert!(obs.iter().all(|o| o.request_id < 1_000_001));
    }

    #[test]
    fn empty_trace_errors() {
        let trace = TraceSet::new();
        assert!(matches!(
            assemble_observations(&trace),
            Err(ModelError::MissingStream(_))
        ));
    }

    #[test]
    fn trace_without_spans_errors() {
        let mut trace = gfs_trace(WorkloadMix::read_heavy(), 10);
        trace.spans.clear();
        assert!(matches!(
            assemble_observations(&trace),
            Err(ModelError::InsufficientRequests { .. })
        ));
    }

    #[test]
    fn signature_display() {
        let sig = ClassSignature(vec!["a".into(), "b".into()]);
        assert_eq!(sig.to_string(), "a → b");
    }
}
