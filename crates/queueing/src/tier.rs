//! Liu et al.'s 3-tier web-application model.
//!
//! "Their model consists of three multi-station queueing models, which
//! emulate the Web, Application and Database tier respectively" and "is
//! proven to accurately predict the performance metrics (throughput and
//! latency) of request servicing". Here: an analytic prediction (per-tier
//! M/M/c in tandem) plus a simulation path through [`crate::network`] used
//! to validate the analytic model the way the paper describes.

use kooza_sim::rng::Rng64;
use kooza_stats::dist::Exponential;

use crate::analytic::{mmc, QueueMetrics};
use crate::arrival::ArrivalProcess;
use crate::network::{simulate, NetworkConfig, NetworkResults, NodeConfig};
use crate::{QueueError, Result};

/// Configuration of one tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierConfig {
    /// Parallel stations (threads/instances) in the tier.
    pub servers: usize,
    /// Mean service time per request, seconds (exponential).
    pub mean_service_secs: f64,
}

/// Predicted steady-state performance of the 3-tier system.
#[derive(Debug, Clone, PartialEq)]
pub struct TierPrediction {
    /// Per-tier metrics (web, app, db).
    pub tiers: Vec<QueueMetrics>,
    /// End-to-end mean response time, seconds.
    pub mean_response_secs: f64,
    /// Sustained throughput, requests/second (equals the arrival rate when
    /// stable).
    pub throughput_per_sec: f64,
}

/// The 3-tier model: web, application and database tiers in tandem.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreeTierModel {
    tiers: [TierConfig; 3],
}

impl ThreeTierModel {
    /// Creates a model from (web, app, db) tier configurations.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::InvalidParameter`] for zero servers or
    /// non-positive service times.
    pub fn new(web: TierConfig, app: TierConfig, db: TierConfig) -> Result<Self> {
        for t in [web, app, db] {
            if t.servers == 0 {
                return Err(QueueError::InvalidParameter { name: "servers", value: 0.0 });
            }
            if !(t.mean_service_secs.is_finite() && t.mean_service_secs > 0.0) {
                return Err(QueueError::InvalidParameter {
                    name: "mean_service_secs",
                    value: t.mean_service_secs,
                });
            }
        }
        Ok(ThreeTierModel { tiers: [web, app, db] })
    }

    /// The tier configurations (web, app, db).
    pub fn tiers(&self) -> &[TierConfig; 3] {
        &self.tiers
    }

    /// The maximum sustainable arrival rate (requests/second): the
    /// capacity of the bottleneck tier.
    pub fn capacity_per_sec(&self) -> f64 {
        self.tiers
            .iter()
            .map(|t| t.servers as f64 / t.mean_service_secs)
            .fold(f64::INFINITY, f64::min)
    }

    /// Analytic prediction at arrival rate `lambda` (requests/second):
    /// per-tier M/M/c in tandem, response = sum of tier responses.
    ///
    /// # Errors
    ///
    /// Returns [`QueueError::Unstable`] if any tier saturates.
    pub fn predict(&self, lambda: f64) -> Result<TierPrediction> {
        let mut tiers = Vec::with_capacity(3);
        let mut response = 0.0;
        for t in &self.tiers {
            let m = mmc(lambda, 1.0 / t.mean_service_secs, t.servers)?;
            response += m.mean_response;
            tiers.push(m);
        }
        Ok(TierPrediction {
            tiers,
            mean_response_secs: response,
            throughput_per_sec: lambda,
        })
    }

    /// Simulates the same system as an explicit queueing network (the
    /// validation path). `arrivals` need not be Poisson — that is exactly
    /// the sensitivity the Joo et al. comparison exercises.
    ///
    /// # Errors
    ///
    /// Propagates network-construction errors.
    pub fn simulate(
        &self,
        arrivals: &mut dyn ArrivalProcess,
        n_requests: u64,
        rng: &mut Rng64,
    ) -> Result<NetworkResults> {
        let names = ["web", "app", "db"];
        let nodes: Vec<NodeConfig> = self
            .tiers
            .iter()
            .zip(names)
            .map(|(t, name)| NodeConfig {
                name: name.into(),
                servers: t.servers,
                service: Box::new(
                    Exponential::with_mean(t.mean_service_secs).expect("validated in new()"),
                ),
            })
            .collect();
        let config = NetworkConfig::tandem(nodes);
        simulate(&config, arrivals, n_requests, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::PoissonArrivals;

    fn model() -> ThreeTierModel {
        ThreeTierModel::new(
            TierConfig { servers: 8, mean_service_secs: 0.002 },
            TierConfig { servers: 4, mean_service_secs: 0.005 },
            TierConfig { servers: 2, mean_service_secs: 0.008 },
        )
        .unwrap()
    }

    #[test]
    fn capacity_is_bottleneck_tier() {
        let m = model();
        // db: 2 / 0.008 = 250 req/s is the bottleneck.
        assert!((m.capacity_per_sec() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn predict_sums_tier_responses() {
        let m = model();
        let p = m.predict(100.0).unwrap();
        let sum: f64 = p.tiers.iter().map(|t| t.mean_response).sum();
        assert!((p.mean_response_secs - sum).abs() < 1e-12);
        assert_eq!(p.throughput_per_sec, 100.0);
        assert_eq!(p.tiers.len(), 3);
    }

    #[test]
    fn predict_rejects_overload() {
        let m = model();
        assert!(matches!(m.predict(260.0), Err(QueueError::Unstable { .. })));
    }

    #[test]
    fn simulation_validates_analytic_prediction() {
        // The paper's claim for Liu et al.: the analytic model accurately
        // predicts throughput and latency. Reproduce in miniature.
        let m = model();
        let lambda = 150.0;
        let predicted = m.predict(lambda).unwrap();
        let mut arrivals = PoissonArrivals::new(lambda).unwrap();
        let mut rng = Rng64::new(1400);
        let sim = m.simulate(&mut arrivals, 120_000, &mut rng).unwrap();
        let rel_err = (sim.mean_response_secs() - predicted.mean_response_secs).abs()
            / predicted.mean_response_secs;
        assert!(rel_err < 0.05, "latency error {rel_err}");
        let tput_err = (sim.throughput_per_sec() - lambda).abs() / lambda;
        assert!(tput_err < 0.05, "throughput error {tput_err}");
    }

    #[test]
    fn latency_grows_toward_saturation() {
        let m = model();
        let l1 = m.predict(50.0).unwrap().mean_response_secs;
        let l2 = m.predict(200.0).unwrap().mean_response_secs;
        let l3 = m.predict(245.0).unwrap().mean_response_secs;
        assert!(l1 < l2 && l2 < l3);
        assert!(l3 > 2.0 * l1);
    }

    #[test]
    fn validation_of_config() {
        assert!(ThreeTierModel::new(
            TierConfig { servers: 0, mean_service_secs: 0.01 },
            TierConfig { servers: 1, mean_service_secs: 0.01 },
            TierConfig { servers: 1, mean_service_secs: 0.01 },
        )
        .is_err());
        assert!(ThreeTierModel::new(
            TierConfig { servers: 1, mean_service_secs: 0.0 },
            TierConfig { servers: 1, mean_service_secs: 0.01 },
            TierConfig { servers: 1, mean_service_secs: 0.01 },
        )
        .is_err());
    }
}
