//! Hardware service-time models: disk, CPU, memory (with buffer cache)
//! and network links.
//!
//! Each model is a small stateful object owned by one chunkserver; state
//! (disk head position, last-touched memory bank, cache contents) is what
//! gives the emitted traces the spatial and temporal locality that the
//! Markov models in `kooza` learn.

use std::collections::VecDeque;

use kooza_sim::SimDuration;

use crate::config::{CpuParams, DiskParams, LinkParams, MemoryParams};
use crate::master::ChunkHandle;

/// Seek-distance-aware disk model.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskModel {
    params: DiskParams,
    head_lbn: u64,
}

impl DiskModel {
    /// Creates a disk with its head parked at LBN 0.
    pub fn new(params: DiskParams) -> Self {
        DiskModel { params, head_lbn: 0 }
    }

    /// Current head position.
    pub fn head_lbn(&self) -> u64 {
        self.head_lbn
    }

    /// Service time for an access at `lbn` of `size` bytes, moving the
    /// head. Sequential accesses (LBN adjacent to the head) skip the seek.
    pub fn access(&mut self, lbn: u64, size: u64) -> SimDuration {
        let distance = self.head_lbn.abs_diff(lbn);
        let blocks = size.div_ceil(512).max(1);
        let seek = if distance <= 1 {
            0.0
        } else {
            // Square-root seek curve: short seeks are much cheaper than
            // full strokes.
            let frac = (distance as f64 / self.params.total_lbns as f64).min(1.0);
            self.params.seek_base_secs + self.params.seek_full_secs * frac.sqrt()
        };
        let transfer = size as f64 / self.params.transfer_bytes_per_sec;
        self.head_lbn = lbn + blocks;
        SimDuration::from_secs_f64(seek + transfer)
    }
}

/// Per-request + per-byte CPU cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    params: CpuParams,
}

impl CpuModel {
    /// Creates the CPU model.
    pub fn new(params: CpuParams) -> Self {
        CpuModel { params }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.params.cores
    }

    /// Busy time for a processing phase over `bytes` bytes.
    pub fn phase(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(
            self.params.per_request_secs + bytes as f64 * self.params.per_byte_secs,
        )
    }
}

/// Banked memory with an LRU chunk buffer cache.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryModel {
    params: MemoryParams,
    last_bank: u32,
    /// LRU queue of cached chunks, most recent at the back.
    cache: VecDeque<ChunkHandle>,
    hits: u64,
    lookups: u64,
}

impl MemoryModel {
    /// Creates the memory model with an empty cache.
    pub fn new(params: MemoryParams) -> Self {
        MemoryModel {
            params,
            last_bank: 0,
            cache: VecDeque::new(),
            hits: 0,
            lookups: 0,
        }
    }

    /// The bank a chunk's buffers live in (static interleaving).
    pub fn bank_of(&self, chunk: ChunkHandle) -> u32 {
        (chunk.0 % self.params.banks as u64) as u32
    }

    /// Access time for `size` bytes in `bank`, updating bank state.
    pub fn access(&mut self, bank: u32, size: u64) -> SimDuration {
        let switch = if bank == self.last_bank {
            0.0
        } else {
            self.params.bank_switch_secs
        };
        self.last_bank = bank;
        SimDuration::from_secs_f64(switch + size as f64 / self.params.bandwidth_bytes_per_sec)
    }

    /// Buffer-cache lookup: returns whether `chunk` was cached, and makes
    /// it most-recently-used (inserting it if absent, evicting LRU).
    pub fn cache_access(&mut self, chunk: ChunkHandle) -> bool {
        self.lookups += 1;
        let hit = if let Some(pos) = self.cache.iter().position(|&c| c == chunk) {
            self.cache.remove(pos);
            self.hits += 1;
            true
        } else {
            false
        };
        self.cache.push_back(chunk);
        while self.cache.len() > self.params.cache_chunks.max(1) {
            self.cache.pop_front();
        }
        hit
    }

    /// Cache hit ratio so far.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        self.params.banks
    }
}

/// A latency + bandwidth network link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    params: LinkParams,
}

impl LinkModel {
    /// Creates the link model.
    pub fn new(params: LinkParams) -> Self {
        LinkModel { params }
    }

    /// Time to move `size` bytes across the link.
    pub fn transfer(&self, size: u64) -> SimDuration {
        SimDuration::from_secs_f64(
            self.params.latency_secs + size as f64 / self.params.bandwidth_bytes_per_sec,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_sequential_is_cheaper_than_random() {
        let mut d = DiskModel::new(DiskParams::default());
        let first = d.access(1_000_000, 65536);
        // Head now just past 1_000_000; adjacent access is sequential.
        let sequential = d.access(d.head_lbn(), 65536);
        let random = d.access(500_000_000, 65536);
        assert!(sequential < first, "sequential {sequential} first {first}");
        assert!(random > sequential * 2, "random {random} sequential {sequential}");
    }

    #[test]
    fn disk_transfer_scales_with_size() {
        let mut d = DiskModel::new(DiskParams::default());
        let small = d.access(d.head_lbn(), 64 * 1024);
        let large = d.access(d.head_lbn(), 4 * 1024 * 1024);
        // 4 MB at 100 MB/s = 40 ms dominates.
        assert!(large.as_secs_f64() > 0.039, "large {large}");
        assert!(small.as_secs_f64() < 0.002, "small {small}");
    }

    #[test]
    fn disk_longer_seeks_cost_more() {
        let params = DiskParams::default();
        let mut near = DiskModel::new(params);
        let mut far = DiskModel::new(params);
        let t_near = near.access(10_000, 4096);
        let t_far = far.access(1_900_000_000, 4096);
        assert!(t_far > t_near);
    }

    #[test]
    fn cpu_phase_costs() {
        let cpu = CpuModel::new(CpuParams::default());
        let empty = cpu.phase(0);
        assert!((empty.as_secs_f64() - 20e-6).abs() < 1e-12);
        let meg = cpu.phase(1_000_000);
        assert!((meg.as_secs_f64() - (20e-6 + 1e-3)).abs() < 1e-9);
        assert_eq!(cpu.cores(), 4);
    }

    #[test]
    fn memory_bank_switch_penalty() {
        let mut m = MemoryModel::new(MemoryParams::default());
        let same = m.access(0, 4096);
        let switch = m.access(1, 4096);
        assert!(switch > same);
        let back_to_back = m.access(1, 4096);
        assert_eq!(back_to_back, same);
    }

    #[test]
    fn memory_bank_mapping_stable() {
        let m = MemoryModel::new(MemoryParams::default());
        let c = ChunkHandle(13);
        assert_eq!(m.bank_of(c), m.bank_of(c));
        assert!(m.bank_of(c) < m.banks());
    }

    #[test]
    fn cache_lru_behaviour() {
        let params = MemoryParams { cache_chunks: 2, ..MemoryParams::default() };
        let mut m = MemoryModel::new(params);
        assert!(!m.cache_access(ChunkHandle(1))); // miss, cached
        assert!(!m.cache_access(ChunkHandle(2))); // miss, cached
        assert!(m.cache_access(ChunkHandle(1))); // hit, 1 is MRU
        assert!(!m.cache_access(ChunkHandle(3))); // miss, evicts 2
        assert!(!m.cache_access(ChunkHandle(2))); // miss (was evicted)
        assert!(m.cache_access(ChunkHandle(2))); // hit
        assert!((m.hit_ratio() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn link_latency_floor_and_bandwidth() {
        let l = LinkModel::new(LinkParams::default());
        let tiny = l.transfer(1);
        assert!(tiny.as_secs_f64() >= 100e-6);
        let mb = l.transfer(125_000_000);
        assert!((mb.as_secs_f64() - 1.0001).abs() < 0.001, "1s transfer {mb}");
    }
}
