//! Storage study (§5): SSD-caching evaluation with the storage model.
//!
//! The paper notes KOOZA's storage model "has been effectively applied in
//! storage system studies like SSD caching ... to improve performance and
//! efficiency." Here: train the storage model, generate a synthetic I/O
//! stream, and sweep SSD cache sizes — the cache absorbs the hottest LBN
//! buckets, and we measure hit ratio and resulting mean service time.
//!
//! Run with: `cargo run --example ssd_caching`

use std::collections::VecDeque;

use kooza::Kooza;
use kooza::{PhaseDemand, WorkloadModel};
use kooza_gfs::{Cluster, ClusterConfig, DiskModel, DiskParams, WorkloadMix};
use kooza_sim::rng::Rng64;

/// A simple LRU SSD cache over LBN extents.
struct SsdCache {
    capacity: usize,
    extents: VecDeque<u64>,
    extent_lbns: u64,
    hits: u64,
    lookups: u64,
}

impl SsdCache {
    fn new(capacity_extents: usize, extent_lbns: u64) -> Self {
        SsdCache {
            capacity: capacity_extents,
            extents: VecDeque::new(),
            extent_lbns,
            hits: 0,
            lookups: 0,
        }
    }

    fn access(&mut self, lbn: u64) -> bool {
        self.lookups += 1;
        let extent = lbn / self.extent_lbns;
        let hit = if let Some(pos) = self.extents.iter().position(|&e| e == extent) {
            self.extents.remove(pos);
            self.hits += 1;
            true
        } else {
            false
        };
        self.extents.push_back(extent);
        while self.extents.len() > self.capacity.max(1) {
            self.extents.pop_front();
        }
        hit
    }

    fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train the model on a skewed (hot/cold) read workload.
    let mut config = ClusterConfig::small();
    config.workload = WorkloadMix {
        n_chunks: 500,
        zipf_skew: 1.1,
        ..WorkloadMix::read_heavy()
    };
    // Disable the RAM buffer cache so the disk stream carries the skew.
    config.memory.cache_chunks = 1;
    let outcome = Cluster::new(&config)?.run(3000, 5);
    let model = Kooza::fit(&outcome.trace)?;

    // One synthetic I/O stream, swept over cache sizes.
    let mut rng = Rng64::new(17);
    let requests = model.generate(5000, &mut rng);
    let ios: Vec<(u64, u64)> = requests
        .iter()
        .flat_map(|r| {
            r.phases.iter().filter_map(|p| match p {
                PhaseDemand::Disk { lbn, bytes, .. } => Some((*lbn, *bytes)),
                _ => None,
            })
        })
        .collect();
    println!("synthetic I/O stream: {} accesses\n", ios.len());

    let ssd_service_secs = 0.0002; // 200 µs per cached access
    let extent = 128 * 1024; // LBNs per cache extent (64 MB)
    println!(
        "{:>14} {:>10} {:>16} {:>12}",
        "cache extents", "hit ratio", "mean I/O (ms)", "vs no cache"
    );
    let mut no_cache_mean = None;
    for cache_extents in [0usize, 8, 32, 128, 512] {
        let mut disk = DiskModel::new(DiskParams::default());
        let mut cache = SsdCache::new(cache_extents.max(1), extent);
        let mut total = 0.0;
        for &(lbn, bytes) in &ios {
            let hit = cache_extents > 0 && cache.access(lbn);
            total += if hit {
                ssd_service_secs
            } else {
                disk.access(lbn, bytes).as_secs_f64()
            };
        }
        let mean = total / ios.len() as f64;
        let baseline = no_cache_mean.get_or_insert(mean);
        println!(
            "{:>14} {:>9.1}% {:>16.3} {:>11.2}x",
            cache_extents,
            if cache_extents == 0 { 0.0 } else { cache.hit_ratio() * 100.0 },
            mean * 1e3,
            *baseline / mean
        );
    }
    println!(
        "\nThe storage model preserved the trace's LBN locality, so the\n\
         cache-size sweep shows the same diminishing-returns curve a\n\
         trace replay would — without needing the original traces."
    );
    Ok(())
}
