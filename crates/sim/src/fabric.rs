//! Fair-sharing flow-level network fabric over a rack/spine topology.
//!
//! The single-link [`crate::ServerPool`]-plus-fixed-service network model
//! cannot express shared-bandwidth effects: incast at a receiver, an
//! oversubscribed rack uplink throttling many senders at once, or
//! background re-replication traffic slowing client reads. This module
//! models the network as a *fluid* flow system instead:
//!
//! * **Topology.** `hosts` servers are packed into racks of
//!   `hosts_per_rack`; each host has a full-duplex access link of
//!   `host_bandwidth` bytes/sec to its top-of-rack switch, and each rack
//!   has a full-duplex uplink of `hosts_per_rack * host_bandwidth /
//!   oversubscription` to a non-blocking spine. Clients (and, in sharded
//!   runs, hosts owned by other shards) attach at the spine with
//!   uncapped access.
//! * **Flows.** A flow is a byte count moving along a fixed link path.
//!   It spends one propagation `latency` gated (consuming no bandwidth),
//!   then competes for bandwidth until its bytes drain.
//! * **Fairness.** Active flows share each link by max-min fairness,
//!   computed by progressive filling: repeatedly saturate the most
//!   contended link, freeze its flows at the fair share, and subtract.
//!   A lone flow therefore gets the full host bandwidth, reproducing the
//!   legacy fixed-service `latency + bytes/bandwidth` link exactly.
//! * **Determinism.** Rates are recomputed only at flow arrival, gate
//!   opening, completion and host failure. The algorithm visits links in
//!   index order and freezes whole links at a time (one multiply-subtract
//!   per link per round), so the resulting rates are independent of flow
//!   insertion order, and identical across platforms for identical flow
//!   sets.
//!
//! The fabric is event-loop agnostic: callers [`Fabric::advance`] it to
//! the current simulated time before any interaction, start flows, and
//! schedule their own wake-up at [`Fabric::next_change`].

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// Where a flow terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A client (or any off-fabric peer) attached at the spine with
    /// uncapped access bandwidth; the flow only crosses rack and host
    /// links on the host side of its path.
    Client,
    /// Host `0..hosts` inside the fabric.
    Host(usize),
}

/// One unidirectional link: a capacity plus its carried-byte integral.
#[derive(Debug, Clone)]
struct Link {
    /// Capacity in bytes per second.
    capacity: f64,
    /// Total bytes carried so far (integral of the aggregate rate).
    carried_bytes: f64,
    /// Simulated time this link spent saturated (aggregate rate at
    /// capacity, within rounding).
    busy: SimDuration,
}

/// One flow in the fabric.
#[derive(Debug, Clone)]
struct Flow {
    /// Bytes still to transfer once past the gate.
    remaining: f64,
    /// Current max-min rate in bytes/sec; 0 while gated.
    rate: f64,
    /// Instant the flow finishes propagation and starts consuming
    /// bandwidth.
    gate: SimTime,
    /// Link indices the flow crosses (empty for loopback paths, which
    /// complete at the gate).
    links: Vec<u32>,
}

/// A shared-bandwidth rack/spine network fabric (see module docs).
#[derive(Debug)]
pub struct Fabric {
    hosts: usize,
    hosts_per_rack: usize,
    racks: usize,
    latency: SimDuration,
    links: Vec<Link>,
    /// Flows keyed by id; BTreeMap so every sweep is in ascending-id
    /// (i.e. creation) order, independent of hash state.
    flows: BTreeMap<u64, Flow>,
    next_id: u64,
    /// Last instant the fluid state was integrated to.
    clock: SimTime,
    flows_started: u64,
    rerates: u64,
    /// Simulated time during which at least one link was saturated.
    bottleneck_busy: SimDuration,
}

/// Aggregate rate at or above this fraction of capacity counts a link as
/// saturated for the busy counters.
const SATURATION: f64 = 0.999;

/// A flow is complete once fewer bytes remain than its rate moves in one
/// nanosecond (the clock granularity), with an absolute floor so stalled
/// dust cannot keep a flow alive.
fn drained(remaining: f64, rate: f64) -> bool {
    remaining <= rate * 1.5e-9 + 1e-6
}

impl Fabric {
    /// Builds a fabric of `hosts` servers in racks of `hosts_per_rack`,
    /// each host with `host_bandwidth` bytes/sec full-duplex access, rack
    /// uplinks oversubscribed by `oversubscription`, and per-flow
    /// propagation `latency`.
    ///
    /// # Panics
    ///
    /// Panics unless `hosts >= 1`, `hosts_per_rack >= 1`,
    /// `host_bandwidth` is finite and positive, and `oversubscription`
    /// lies in `[1, hosts_per_rack]` (so a lone flow is never throttled
    /// below its host link, keeping the single-flow case identical to
    /// the legacy fixed-service link).
    pub fn new(
        hosts: usize,
        hosts_per_rack: usize,
        oversubscription: f64,
        host_bandwidth: f64,
        latency: SimDuration,
    ) -> Fabric {
        assert!(hosts >= 1, "fabric needs at least one host");
        assert!(hosts_per_rack >= 1, "racks need at least one slot");
        assert!(
            host_bandwidth.is_finite() && host_bandwidth > 0.0,
            "host bandwidth must be finite and positive, got {host_bandwidth}"
        );
        assert!(
            (1.0..=hosts_per_rack as f64).contains(&oversubscription),
            "oversubscription must lie in [1, hosts_per_rack], got {oversubscription}"
        );
        let racks = hosts.div_ceil(hosts_per_rack);
        let rack_capacity = hosts_per_rack as f64 * host_bandwidth / oversubscription;
        let mut links = Vec::with_capacity(2 * hosts + 2 * racks);
        let link = |capacity: f64| Link { capacity, carried_bytes: 0.0, busy: SimDuration::ZERO };
        for _ in 0..2 * hosts {
            links.push(link(host_bandwidth));
        }
        for _ in 0..2 * racks {
            links.push(link(rack_capacity));
        }
        Fabric {
            hosts,
            hosts_per_rack,
            racks,
            latency,
            links,
            flows: BTreeMap::new(),
            next_id: 0,
            clock: SimTime::ZERO,
            flows_started: 0,
            rerates: 0,
            bottleneck_busy: SimDuration::ZERO,
        }
    }

    /// Number of hosts in the fabric.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// Number of unidirectional links (host up/down, then rack up/down).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Flows started over the fabric's lifetime.
    pub fn flows_started(&self) -> u64 {
        self.flows_started
    }

    /// Number of max-min re-rate passes run so far.
    pub fn rerates(&self) -> u64 {
        self.rerates
    }

    /// Flows currently in the fabric (gated or transferring).
    pub fn in_flight(&self) -> usize {
        self.flows.len()
    }

    /// Total simulated time during which at least one link was saturated.
    pub fn bottleneck_busy(&self) -> SimDuration {
        self.bottleneck_busy
    }

    /// Current max-min rate of a flow in bytes/sec (0 while gated),
    /// or `None` for unknown/finished flows.
    pub fn rate_of(&self, id: u64) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Utilization of every link over `[0, end]`: carried bytes divided
    /// by capacity times elapsed time, clamped to `[0, 1]`.
    pub fn link_utilization(&self, end: SimTime) -> Vec<f64> {
        let secs = end.as_secs_f64();
        self.links
            .iter()
            .map(|l| {
                if secs <= 0.0 {
                    0.0
                } else {
                    (l.carried_bytes / (l.capacity * secs)).clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    fn rack_of(&self, host: usize) -> usize {
        host / self.hosts_per_rack
    }

    fn host_up(&self, host: usize) -> u32 {
        host as u32
    }

    fn host_down(&self, host: usize) -> u32 {
        (self.hosts + host) as u32
    }

    fn rack_up(&self, rack: usize) -> u32 {
        (2 * self.hosts + rack) as u32
    }

    fn rack_down(&self, rack: usize) -> u32 {
        (2 * self.hosts + self.racks + rack) as u32
    }

    /// The link path from `from` to `to`. Same-rack host pairs hairpin at
    /// the ToR (no rack uplink); client/spine peers only cross the host
    /// side's links; a host talking to itself crosses nothing.
    fn path(&self, from: Endpoint, to: Endpoint) -> Vec<u32> {
        let check = |h: usize| {
            assert!(h < self.hosts, "endpoint host {h} out of range (hosts={})", self.hosts)
        };
        match (from, to) {
            (Endpoint::Client, Endpoint::Client) => Vec::new(),
            (Endpoint::Client, Endpoint::Host(b)) => {
                check(b);
                vec![self.rack_down(self.rack_of(b)), self.host_down(b)]
            }
            (Endpoint::Host(a), Endpoint::Client) => {
                check(a);
                vec![self.host_up(a), self.rack_up(self.rack_of(a))]
            }
            (Endpoint::Host(a), Endpoint::Host(b)) => {
                check(a);
                check(b);
                if a == b {
                    Vec::new()
                } else if self.rack_of(a) == self.rack_of(b) {
                    vec![self.host_up(a), self.host_down(b)]
                } else {
                    vec![
                        self.host_up(a),
                        self.rack_up(self.rack_of(a)),
                        self.rack_down(self.rack_of(b)),
                        self.host_down(b),
                    ]
                }
            }
        }
    }

    /// Starts a flow of `bytes` from `from` to `to` at the fabric's
    /// current clock and returns its id. Call [`Fabric::advance`] to the
    /// present first; the flow spends `latency` gated, then competes for
    /// bandwidth. Completion is reported by a later `advance`.
    pub fn start_flow(&mut self, from: Endpoint, to: Endpoint, bytes: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.flows_started += 1;
        let flow = Flow {
            remaining: bytes as f64,
            rate: 0.0,
            gate: self.clock + self.latency,
            links: self.path(from, to),
        };
        self.flows.insert(id, flow);
        id
    }

    /// Cancels one in-flight flow (a timed-out transfer being restarted,
    /// for example) and re-rates the survivors. Returns `false` when the
    /// id is unknown or already complete. As with `start_flow`, callers
    /// must `advance` to the present first.
    pub fn cancel_flow(&mut self, id: u64) -> bool {
        if self.flows.remove(&id).is_none() {
            return false;
        }
        self.recompute();
        true
    }

    /// Drops every flow whose path crosses `host`'s access links and
    /// re-rates the survivors. Returns the dropped flow ids in ascending
    /// order; the caller owns whatever bookkeeping was attached to them.
    pub fn fail_host(&mut self, host: usize) -> Vec<u64> {
        let up = self.host_up(host);
        let down = self.host_down(host);
        let dropped: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.links.contains(&up) || f.links.contains(&down))
            .map(|(&id, _)| id)
            .collect();
        if !dropped.is_empty() {
            for id in &dropped {
                self.flows.remove(id);
            }
            self.recompute();
        }
        dropped
    }

    /// The next instant the fluid state changes on its own: the earliest
    /// gate opening or estimated flow completion. `None` when the fabric
    /// is idle. Callers schedule their wake-up event here; any flow
    /// start/failure in between simply schedules a fresh (earlier)
    /// wake-up.
    pub fn next_change(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        for flow in self.flows.values() {
            let t = if flow.gate > self.clock {
                flow.gate
            } else if flow.links.is_empty() || drained(flow.remaining, flow.rate) {
                self.clock
            } else if flow.rate > 0.0 {
                // Round the finish estimate up and keep it strictly in
                // the future so every wake-up makes progress.
                let dt = SimDuration::from_secs_f64(flow.remaining / flow.rate)
                    .max(SimDuration::from_nanos(1));
                self.clock + dt
            } else {
                continue;
            };
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        next
    }

    /// Integrates the fluid state forward to `now`, opening gates and
    /// draining flows at their max-min rates. Returns the ids of flows
    /// that completed in `(clock, now]`, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `now` is before a previous `advance` target — the
    /// simulated past is immutable, as with the event engine.
    pub fn advance(&mut self, now: SimTime) -> Vec<u64> {
        assert!(now >= self.clock, "fabric cannot advance into the past");
        let mut completed = Vec::new();
        loop {
            // Step to the earliest internal boundary, or to `now`.
            let target = match self.next_change() {
                Some(t) if t < now => t,
                _ => now,
            };
            let dt = (target - self.clock).as_secs_f64();
            if dt > 0.0 {
                self.integrate(dt, target - self.clock);
                self.clock = target;
            }
            let mut changed = false;
            // Open gates that are due; gated flows hold rate 0 until the
            // next recompute assigns them a share.
            let gates_opened = self
                .flows
                .values()
                .any(|f| f.rate == 0.0 && f.gate <= self.clock && !f.links.is_empty());
            // Complete drained flows (and loopback flows at their gate).
            let done: Vec<u64> = self
                .flows
                .iter()
                .filter(|(_, f)| {
                    f.gate <= self.clock
                        && (f.links.is_empty() || drained(f.remaining, f.rate))
                })
                .map(|(&id, _)| id)
                .collect();
            for id in &done {
                self.flows.remove(id);
                changed = true;
            }
            completed.extend(done);
            if gates_opened || changed {
                self.recompute();
                changed = true;
            }
            if target == now && !changed {
                break;
            }
        }
        completed
    }

    /// Moves `dt_secs` of fluid at the current rates and accrues the
    /// per-link carried-byte integrals and saturation counters.
    fn integrate(&mut self, dt_secs: f64, dt: SimDuration) {
        // Aggregate rate per link, summed in flow-id order (the order is
        // deterministic; the sums only feed monotone counters).
        let mut load = vec![0.0f64; self.links.len()];
        for flow in self.flows.values() {
            if flow.rate > 0.0 && flow.gate <= self.clock {
                for &l in &flow.links {
                    load[l as usize] += flow.rate;
                }
            }
        }
        let mut saturated = false;
        for (link, rate) in self.links.iter_mut().zip(&load) {
            link.carried_bytes += rate * dt_secs;
            if *rate >= SATURATION * link.capacity {
                link.busy += dt;
                saturated = true;
            }
        }
        if saturated {
            self.bottleneck_busy += dt;
        }
        for flow in self.flows.values_mut() {
            if flow.rate > 0.0 && flow.gate <= self.clock {
                flow.remaining = (flow.remaining - flow.rate * dt_secs).max(0.0);
            }
        }
    }

    /// Recomputes max-min fair rates for every active flow by progressive
    /// filling. Insertion-order invariant: each round freezes all flows
    /// of the bottleneck link at one shared value and subtracts that
    /// value once per link (`share * frozen_count`), so no result depends
    /// on the order flows were added.
    fn recompute(&mut self) {
        self.rerates += 1;
        let n_links = self.links.len();
        let mut residual: Vec<f64> = self.links.iter().map(|l| l.capacity).collect();
        let mut live = vec![0u32; n_links];
        // Active flows in id order; `rate < 0` marks "not yet frozen".
        let mut active: Vec<&mut Flow> = Vec::new();
        for flow in self.flows.values_mut() {
            if flow.gate <= self.clock && !flow.links.is_empty() {
                for &l in &flow.links {
                    live[l as usize] += 1;
                }
                flow.rate = -1.0;
                active.push(flow);
            } else {
                flow.rate = 0.0;
            }
        }
        loop {
            // Bottleneck: the live link with the smallest fair share,
            // lowest index on ties.
            let mut bottleneck: Option<(usize, f64)> = None;
            for l in 0..n_links {
                if live[l] == 0 {
                    continue;
                }
                let share = (residual[l] / live[l] as f64).max(0.0);
                match bottleneck {
                    Some((_, best)) if best <= share => {}
                    _ => bottleneck = Some((l, share)),
                }
            }
            let Some((bottleneck, share)) = bottleneck else { break };
            let mut frozen = vec![0u32; n_links];
            for flow in active.iter_mut() {
                if flow.rate < 0.0 && flow.links.contains(&(bottleneck as u32)) {
                    flow.rate = share;
                    for &l in &flow.links {
                        frozen[l as usize] += 1;
                    }
                }
            }
            for l in 0..n_links {
                if frozen[l] > 0 {
                    residual[l] = (residual[l] - share * frozen[l] as f64).max(0.0);
                    live[l] -= frozen[l];
                }
            }
        }
        debug_assert!(active.iter().all(|f| f.rate >= 0.0), "progressive filling left a flow unrated");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BW: f64 = 125e6; // bytes/sec, matches the default LinkParams
    const LAT: SimDuration = SimDuration::from_micros(100);

    fn fabric(hosts: usize) -> Fabric {
        Fabric::new(hosts, 4, 2.0, BW, LAT)
    }

    /// Runs the fabric until `id` completes, returning the completion time.
    fn completion(fabric: &mut Fabric, id: u64) -> SimTime {
        for _ in 0..10_000 {
            let t = fabric.next_change().expect("fabric has pending work");
            if fabric.advance(t).contains(&id) {
                return t;
            }
        }
        panic!("flow {id} never completed");
    }

    #[test]
    fn single_flow_matches_fixed_service_link() {
        let mut f = fabric(8);
        let id = f.start_flow(Endpoint::Client, Endpoint::Host(3), 1_000_000);
        let done = completion(&mut f, id);
        let expected = LAT + SimDuration::from_secs_f64(1_000_000.0 / BW);
        let diff = done.as_nanos().abs_diff((SimTime::ZERO + expected).as_nanos());
        assert!(diff <= 2, "fabric {done} vs fixed link {expected}");
    }

    #[test]
    fn zero_byte_flow_completes_at_gate() {
        let mut f = fabric(4);
        let id = f.start_flow(Endpoint::Host(0), Endpoint::Client, 0);
        assert_eq!(completion(&mut f, id), SimTime::ZERO + LAT);
    }

    #[test]
    fn loopback_flow_completes_at_gate() {
        let mut f = fabric(4);
        let id = f.start_flow(Endpoint::Host(2), Endpoint::Host(2), 1 << 20);
        assert_eq!(completion(&mut f, id), SimTime::ZERO + LAT);
    }

    #[test]
    fn two_flows_into_one_host_halve_their_rates() {
        let mut f = fabric(8);
        let a = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1_000_000);
        let b = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1_000_000);
        // Step past both gates so rates are assigned.
        let gate = f.next_change().unwrap();
        f.advance(gate);
        assert!((f.rate_of(a).unwrap() - BW / 2.0).abs() < 1.0);
        assert!((f.rate_of(b).unwrap() - BW / 2.0).abs() < 1.0);
        // Service takes twice as long; both finish together.
        let done = completion(&mut f, b);
        let expected = LAT + SimDuration::from_secs_f64(2.0 * 1_000_000.0 / BW);
        let diff = done.as_nanos().abs_diff((SimTime::ZERO + expected).as_nanos());
        assert!(diff <= 4, "shared flows finished at {done}, expected {expected}");
    }

    #[test]
    fn oversubscribed_rack_uplink_throttles_egress() {
        // 4 hosts per rack at 2:1 oversubscription: rack uplink carries
        // 2*BW, so 4 concurrent egress flows get BW/2 each.
        let mut f = fabric(4);
        let ids: Vec<u64> = (0..4)
            .map(|h| f.start_flow(Endpoint::Host(h), Endpoint::Client, 1 << 20))
            .collect();
        let gate = f.next_change().unwrap();
        f.advance(gate);
        for id in ids {
            assert!((f.rate_of(id).unwrap() - BW / 2.0).abs() < 1.0);
        }
    }

    #[test]
    fn same_rack_traffic_skips_the_uplink() {
        // Host-to-host inside one rack hairpins at the ToR: even with
        // every pair talking, each flow keeps the full host bandwidth.
        let mut f = fabric(4);
        let a = f.start_flow(Endpoint::Host(0), Endpoint::Host(1), 1 << 20);
        let b = f.start_flow(Endpoint::Host(2), Endpoint::Host(3), 1 << 20);
        let gate = f.next_change().unwrap();
        f.advance(gate);
        assert!((f.rate_of(a).unwrap() - BW).abs() < 1.0);
        assert!((f.rate_of(b).unwrap() - BW).abs() < 1.0);
    }

    #[test]
    fn cross_rack_flow_spans_four_links_and_shares_fairly() {
        let mut f = fabric(8);
        // One cross-rack flow competing with an egress flow on the same
        // source host: the host uplink is the bottleneck, split evenly.
        let x = f.start_flow(Endpoint::Host(0), Endpoint::Host(5), 1 << 20);
        let e = f.start_flow(Endpoint::Host(0), Endpoint::Client, 1 << 20);
        let gate = f.next_change().unwrap();
        f.advance(gate);
        assert!((f.rate_of(x).unwrap() - BW / 2.0).abs() < 1.0);
        assert!((f.rate_of(e).unwrap() - BW / 2.0).abs() < 1.0);
    }

    #[test]
    fn rates_are_insertion_order_invariant() {
        // The same flow multiset started in two different orders must
        // produce bit-identical rates per (src, dst) pair.
        let spec: Vec<(Endpoint, Endpoint)> = vec![
            (Endpoint::Client, Endpoint::Host(0)),
            (Endpoint::Host(1), Endpoint::Client),
            (Endpoint::Host(0), Endpoint::Host(5)),
            (Endpoint::Host(4), Endpoint::Host(6)),
            (Endpoint::Host(1), Endpoint::Host(2)),
        ];
        let rates = |order: Vec<usize>| -> Vec<(usize, f64)> {
            let mut f = fabric(8);
            let mut ids = vec![0u64; spec.len()];
            for &i in &order {
                ids[i] = f.start_flow(spec[i].0, spec[i].1, 1 << 22);
            }
            let gate = f.next_change().unwrap();
            f.advance(gate);
            (0..spec.len()).map(|i| (i, f.rate_of(ids[i]).unwrap())).collect()
        };
        let forward = rates(vec![0, 1, 2, 3, 4]);
        let shuffled = rates(vec![3, 0, 4, 2, 1]);
        assert_eq!(forward, shuffled);
    }

    #[test]
    fn cancel_flow_releases_its_bandwidth() {
        let mut f = fabric(8);
        let a = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1 << 20);
        let b = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1 << 20);
        let gate = f.next_change().unwrap();
        f.advance(gate);
        assert!((f.rate_of(b).unwrap() - BW / 2.0).abs() < 1.0);
        assert!(f.cancel_flow(a));
        assert!(!f.cancel_flow(a), "double cancel must report unknown");
        assert!(f.rate_of(a).is_none());
        // The survivor is immediately re-rated to the full link.
        assert!((f.rate_of(b).unwrap() - BW).abs() < 1.0);
    }

    #[test]
    fn fail_host_drops_its_flows_and_rerates_survivors() {
        let mut f = fabric(8);
        let dead = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1 << 20);
        let cross = f.start_flow(Endpoint::Host(0), Endpoint::Host(5), 1 << 20);
        let alive = f.start_flow(Endpoint::Client, Endpoint::Host(1), 1 << 20);
        let shared = f.start_flow(Endpoint::Client, Endpoint::Host(1), 1 << 20);
        let gate = f.next_change().unwrap();
        f.advance(gate);
        assert!((f.rate_of(alive).unwrap() - BW / 2.0).abs() < 1.0);
        let dropped = f.fail_host(0);
        assert_eq!(dropped, vec![dead, cross]);
        assert!(f.rate_of(dead).is_none());
        // Survivors keep their (unchanged) host-limited share.
        assert!((f.rate_of(alive).unwrap() - BW / 2.0).abs() < 1.0);
        assert!((f.rate_of(shared).unwrap() - BW / 2.0).abs() < 1.0);
    }

    #[test]
    fn busy_counters_and_utilization_accrue() {
        let mut f = fabric(4);
        let id = f.start_flow(Endpoint::Client, Endpoint::Host(0), 1_250_000);
        let end = completion(&mut f, id);
        assert!(f.bottleneck_busy() > SimDuration::ZERO, "a lone flow saturates its host link");
        let util = f.link_utilization(end);
        assert_eq!(util.len(), f.link_count());
        let down = f.host_down(0) as usize;
        assert!(util[down] > 0.5, "host downlink utilization {}", util[down]);
        assert!(util[f.host_up(1) as usize] == 0.0);
        assert_eq!(f.in_flight(), 0);
        assert_eq!(f.flows_started(), 1);
        assert!(f.rerates() >= 2);
    }

    #[test]
    fn coarse_and_fine_stepping_agree() {
        // Internal boundaries are handled inside `advance`, so stepping
        // the fabric in arbitrary increments completes the same flows no
        // later than one increment after the exact event-driven times.
        let build = || {
            let mut f = fabric(8);
            let a = f.start_flow(Endpoint::Client, Endpoint::Host(2), 3_000_000);
            let b = f.start_flow(Endpoint::Client, Endpoint::Host(2), 1_000_000);
            (f, a, b)
        };
        let (mut exact, a, _b) = build();
        let t_exact = completion(&mut exact, a);
        let (mut coarse, ..) = build();
        let step = SimDuration::from_micros(500);
        let mut t = SimTime::ZERO;
        let mut done = Vec::new();
        while done.len() < 2 {
            t += step;
            done.extend(coarse.advance(t));
        }
        assert!(t >= t_exact && (t - t_exact) <= step, "coarse {t}, exact {t_exact}");
        assert_eq!(coarse.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "oversubscription")]
    fn oversubscription_beyond_rack_width_rejected() {
        let _ = Fabric::new(8, 4, 8.0, BW, LAT);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_rejected() {
        let mut f = fabric(4);
        let _ = f.start_flow(Endpoint::Client, Endpoint::Host(9), 1);
    }
}
