//! Shared incast driver for the fabric benchmarks.
//!
//! An N-to-1 incast with timeout/restart recovery: `fanout` senders
//! each push one stripe at host 0 across a rack:4 oversub:2 fabric,
//! restarting any stripe that misses the timeout after a linear backoff
//! staggered per sender. Past the point where the fair share per flow
//! can no longer beat the timeout, restarts pile load onto the
//! saturated receiver link and completion time degrades super-linearly
//! in the fan-out — the regime a fixed-capacity link model cannot
//! express at all.
//!
//! Both `benches/fabric.rs` (the incast curve + wall-clock cost) and
//! `benches/simcore.rs` (the hot-path regression gate) drive this exact
//! loop, so the two reports measure the same simulated workload.

use kooza_sim::{Endpoint, Fabric, SimDuration, SimTime};

/// 1 GbE receiver link, bytes/sec.
pub const BW: f64 = 125e6;
/// One-way propagation gate for every flow.
pub const LAT: SimDuration = SimDuration::from_micros(100);
/// Bytes per response stripe.
pub const STRIPE: u64 = 256 * 1024;
/// Senders give a stripe this long to finish before restarting it.
pub const TIMEOUT: SimDuration = SimDuration::from_micros(25_000);

/// One sender's state in the incast driver.
#[derive(Clone, Copy)]
enum Sender {
    /// Waiting to (re)transmit at the given instant.
    Waiting(SimTime),
    /// Transmitting flow `id`, which times out at the given instant.
    Active(u64, SimTime),
    Done,
}

/// Simulated completion time of `fanout` servers each pushing one
/// [`STRIPE`]-byte response at host 0, restarting any stripe that
/// misses [`TIMEOUT`]. Returns `(completion, restarts)`.
pub fn incast(fanout: usize) -> (SimDuration, u64) {
    let mut fabric = Fabric::new(fanout + 1, 4, 2.0, BW, LAT);
    let mut senders = vec![Sender::Waiting(SimTime::ZERO); fanout];
    let mut completed: Vec<u64> = Vec::new();
    let mut restarts = 0u64;
    let mut now = SimTime::ZERO;
    let mut remaining = fanout;
    // Earliest sender wake-up (a (re)start instant or a timeout
    // deadline), maintained by the transition sweep below so the loop
    // head only consults the fabric. Every sender starts Waiting(0).
    let mut sender_next = SimTime::ZERO;
    while remaining > 0 {
        // Next instant anything happens: a fabric rate change, a sender
        // (re)start, or a timeout deadline.
        let next = fabric.next_change().unwrap_or(SimTime::MAX).min(sender_next);
        assert!(next > now || now == SimTime::ZERO, "incast driver stalled at {now}");
        now = next;
        fabric.advance_into(now, &mut completed);
        sender_next = SimTime::MAX;
        for (i, sender) in senders.iter_mut().enumerate() {
            match *sender {
                Sender::Active(id, deadline) => {
                    if completed.contains(&id) {
                        *sender = Sender::Done;
                        remaining -= 1;
                    } else if deadline <= now {
                        // Missed the timeout: drop the half-sent stripe
                        // and retransmit from scratch after a backoff
                        // staggered by sender index.
                        fabric.cancel_flow(id);
                        restarts += 1;
                        let backoff = TIMEOUT + SimDuration::from_micros(200 * (i as u64 + 1));
                        let at = now + backoff;
                        *sender = Sender::Waiting(at);
                        sender_next = sender_next.min(at);
                    } else {
                        sender_next = sender_next.min(deadline);
                    }
                }
                Sender::Waiting(at) if at <= now => {
                    let id = fabric.start_flow(Endpoint::Host(i + 1), Endpoint::Host(0), STRIPE);
                    let deadline = now + TIMEOUT;
                    *sender = Sender::Active(id, deadline);
                    sender_next = sender_next.min(deadline);
                }
                Sender::Waiting(at) => sender_next = sender_next.min(at),
                Sender::Done => {}
            }
        }
    }
    (now - SimTime::ZERO, restarts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_sender_finishes_without_restarts() {
        let (t, restarts) = incast(1);
        assert_eq!(restarts, 0);
        // One 256 KB stripe at 125 MB/s behind a 100 µs gate: ~2.2 ms.
        assert!(t > SimDuration::from_micros(2_000) && t < SimDuration::from_micros(3_000));
    }

    #[test]
    fn incast_curve_is_deterministic() {
        assert_eq!(incast(8), incast(8));
    }
}
