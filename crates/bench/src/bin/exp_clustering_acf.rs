//! EXP-D — Model-based clustering + ACF matching (Li).
//!
//! §2.1.3: Li's two-phase approach: "Model-Based Clustering in order to
//! perform the distribution fitting" then "generates autocorrelations that
//! match the real data to create synthetic workloads." We build a
//! two-population job stream (interactive + batch) with temporal
//! correlation, cluster it blind with a BIC-selected Gaussian mixture,
//! then synthesize with ACF matching and compare marginals and ACF.

use kooza_bench::{banner, section, EXPERIMENT_SEED};
use kooza_sim::rng::Rng64;
use kooza_stats::acf::{acf, synthesize_with_acf};
use kooza_stats::cluster::select_components;
use kooza_stats::ks::ks_two_sample;

/// A job stream with two correlated populations: (runtime, memory) pairs,
/// where consecutive jobs tend to come from the same population.
fn job_stream(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Rng64::new(seed);
    let mut interactive = true;
    (0..n)
        .map(|_| {
            if rng.chance(0.1) {
                interactive = !interactive;
            }
            let gauss = |rng: &mut Rng64| {
                let u1 = rng.next_f64_open();
                let u2 = rng.next_f64();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            if interactive {
                vec![0.5 + 0.1 * gauss(&mut rng), 1.0 + 0.2 * gauss(&mut rng)]
            } else {
                vec![30.0 + 5.0 * gauss(&mut rng), 8.0 + 1.0 * gauss(&mut rng)]
            }
        })
        .collect()
}

fn main() {
    banner("EXP-D", "Model-based clustering + ACF-matched synthesis");

    let jobs = job_stream(4000, EXPERIMENT_SEED);
    let mut rng = Rng64::new(EXPERIMENT_SEED + 1);

    section("phase 1: model-based clustering (BIC-selected GMM)");
    let gmm = select_components(&jobs, 5, &mut rng).expect("gmm fits");
    println!("selected components: {}", gmm.n_components());
    for (i, (w, m)) in gmm.weights.iter().zip(&gmm.means).enumerate() {
        println!(
            "cluster {i}: weight {:.2}, mean runtime {:.2}s, mean memory {:.2}GB",
            w, m[0], m[1]
        );
    }

    section("phase 2: ACF-matched synthetic runtimes");
    let runtimes: Vec<f64> = jobs.iter().map(|j| j[0]).collect();
    let synth = synthesize_with_acf(&runtimes, 3, 4000, &mut rng).expect("synthesis");

    let orig_acf = acf(&runtimes, 5).expect("acf");
    let synth_acf = acf(&synth, 5).expect("acf");
    println!("{:<8} {:>12} {:>12}", "lag", "original", "synthetic");
    for lag in 1..=5 {
        println!("{:<8} {:>12.3} {:>12.3}", lag, orig_acf[lag], synth_acf[lag]);
    }

    let ks = ks_two_sample(&runtimes, &synth).expect("ks");
    println!("\nmarginal two-sample KS D = {:.4} (p = {:.3})", ks.statistic, ks.p_value);

    // A naive iid shuffle keeps the marginal but loses all correlation.
    let mut shuffled = runtimes.clone();
    rng.shuffle(&mut shuffled);
    let shuffled_acf = acf(&shuffled, 1).expect("acf");
    println!(
        "iid-shuffle baseline ACF(1): {:.3} vs original {:.3} vs ACF-matched {:.3}",
        shuffled_acf[1], orig_acf[1], synth_acf[1]
    );
    println!(
        "\npaper claim (Li): clustering recovers the job populations and the\n\
         two-phase generator reproduces both the marginal and the\n\
         autocorrelation, which an iid resample cannot."
    );
}
