//! Cross-crate check that real simulator traces survive persistence
//! byte-identically in both formats — the full-corpus counterpart of the
//! hand-built golden fixtures in `crates/trace/tests/golden_jsonl.rs` and
//! `crates/trace/tests/ktc_golden.rs`.

use kooza_gfs::{Cluster, ClusterConfig, WorkloadMix};
use kooza_trace::TraceSet;

fn workloads() -> [(WorkloadMix, u64); 3] {
    [
        (WorkloadMix::mixed(), 7u64),
        (WorkloadMix::read_heavy(), 11),
        (WorkloadMix::write_heavy(), 13),
    ]
}

fn simulate(workload: WorkloadMix, seed: u64) -> TraceSet {
    let mut config = ClusterConfig::small();
    config.workload = workload;
    Cluster::new(&config).unwrap().run(200, seed).trace
}

#[test]
fn simulator_traces_round_trip_byte_identically() {
    // A real trace from the GFS simulator (floats, sampling, hundreds of
    // spans) must be a fixed point of write → read → write.
    for (workload, seed) in workloads() {
        let trace = simulate(workload, seed);
        let mut first = Vec::new();
        trace.write_jsonl(&mut first).unwrap();
        let reread = TraceSet::read_jsonl(first.as_slice()).unwrap();
        assert_eq!(reread, trace);
        let mut second = Vec::new();
        reread.write_jsonl(&mut second).unwrap();
        assert_eq!(first, second);
    }
}

#[test]
fn simulator_traces_round_trip_through_ktc() {
    // The same fixed-point contract for the binary format: decode is
    // lossless against the in-memory trace, and re-encoding the decoded
    // trace reproduces the stream byte for byte (canonical encoding).
    for (workload, seed) in workloads() {
        let trace = simulate(workload, seed);
        let mut first = Vec::new();
        trace.write_ktc(&mut first).unwrap();
        let reread = TraceSet::read_ktc(first.as_slice()).unwrap();
        assert_eq!(reread, trace);
        let mut second = Vec::new();
        reread.write_ktc(&mut second).unwrap();
        assert_eq!(first, second);

        // Both formats must also agree with each other on every record.
        let mut jsonl = Vec::new();
        trace.write_jsonl(&mut jsonl).unwrap();
        assert_eq!(TraceSet::read_jsonl(jsonl.as_slice()).unwrap(), reread);
    }
}
